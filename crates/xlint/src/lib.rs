//! `xlint` — the repository's own static-analysis pass.
//!
//! Clippy cannot express the rules this codebase actually relies on:
//! that the *serving* crates never panic, that every `unsafe` block
//! justifies itself, that kernels stay deterministic (no ambient IO or
//! clocks outside the storage layer), that every bench that produces a
//! `BENCH_*.json` artifact is actually wired into CI, and that the
//! public API of the summary/engine layers is documented. This crate is
//! a hand-rolled, comment- and string-aware token scanner (the build
//! container is offline, so no `syn`) enforcing exactly those rules.
//!
//! # Rules
//!
//! | rule | scope | meaning |
//! |------|-------|---------|
//! | `no-panic` (R1) | `core`, `engine`, `xml`, `predicate`, `query` src, non-test | no `.unwrap()` / `.expect(…)` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` |
//! | `safety-comment` (R2) | whole repo | every `unsafe` token is preceded by a `// SAFETY:` comment (same line or up to 3 lines above) |
//! | `io-confinement` (R3) | serving crates, non-test | `std::fs` / `std::net` / `Instant::now` / `SystemTime` appear only in `core::store` (and the bench crate) |
//! | `bench-in-ci` (R4) | workspace | every registered bench that hooks the `XMLEST_BENCH_JSON` artifact writer is invoked with `--bench <name>` in `.github/workflows/ci.yml` |
//! | `doc-pub` (R5) | `core`, `engine` src, non-test | every `pub` item declaration (fn/struct/enum/trait/type/const/static/mod/union) carries a doc comment |
//! | `lock-free-serving` (R6) | warm estimate-path modules, non-test | no `Mutex`/`RwLock` acquisition (`.lock()` / `.read()` / `.write()`) — the serving read path must stay wait-free |
//! | `metrics-discipline` (R7) | serving crates, non-test | every `.counter(…)`/`.histogram(…)` registration passes a string-literal name **and** a non-empty string-literal doc; raw `Instant::now` is confined to `xobs::clock` — instrumented code times itself through `Recorder` spans |
//!
//! # Pragma escape hatch
//!
//! A violation is suppressed by a **same-line** pragma with a
//! **non-empty justification**:
//!
//! ```text
//! let g = grid.lock().expect("lock"); // xlint: allow(no-panic, "poisoned lock means a prior panic; propagating is intended")
//! ```
//!
//! A pragma without a justification is itself reported. Unknown rule
//! names in a pragma are reported too, so typos cannot silently
//! suppress anything.
//!
//! # Test code
//!
//! Items under a `#[cfg(test)]` attribute (and everything inside them)
//! are exempt from `no-panic`, `io-confinement` and `doc-pub` — tests
//! are expected to unwrap. `safety-comment` applies everywhere: unsafe
//! test scaffolding still wants a justification.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// The rules this pass enforces. Names are what pragmas refer to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: no panicking constructs in non-test serving code.
    NoPanic,
    /// R2: every `unsafe` is preceded by a `// SAFETY:` comment.
    SafetyComment,
    /// R3: ambient IO and clocks confined to `core::store` and `bench`.
    IoConfinement,
    /// R4: benches that write `BENCH_*.json` artifacts must run in CI.
    BenchInCi,
    /// R5: `pub` items in `core`/`engine` carry doc comments.
    DocPub,
    /// R6: no lock acquisition in warm estimate-path modules.
    LockFreeServing,
    /// R7: metric registrations carry literal names and non-empty
    /// docs; raw clock reads are confined to `xobs::clock`.
    MetricsDiscipline,
    /// Meta-rule: a malformed pragma (missing justification, unknown
    /// rule name) is itself a violation.
    BadPragma,
}

impl Rule {
    /// The pragma/display name of the rule.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::SafetyComment => "safety-comment",
            Rule::IoConfinement => "io-confinement",
            Rule::BenchInCi => "bench-in-ci",
            Rule::DocPub => "doc-pub",
            Rule::LockFreeServing => "lock-free-serving",
            Rule::MetricsDiscipline => "metrics-discipline",
            Rule::BadPragma => "bad-pragma",
        }
    }

    /// Parses a pragma rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Some(match name {
            "no-panic" => Rule::NoPanic,
            "safety-comment" => Rule::SafetyComment,
            "io-confinement" => Rule::IoConfinement,
            "bench-in-ci" => Rule::BenchInCi,
            "doc-pub" => Rule::DocPub,
            "lock-free-serving" => Rule::LockFreeServing,
            "metrics-discipline" => Rule::MetricsDiscipline,
            _ => return None,
        })
    }
}

/// One finding, addressed by file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the violation is in (as passed to the scanner).
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule.name(),
            self.msg
        )
    }
}

/// A source file reduced to what the rules inspect: code with every
/// comment, string and char literal blanked to spaces (newlines kept,
/// so byte offsets and line numbers survive), plus the comment texts
/// per line (for SAFETY comments and pragmas).
#[derive(Debug)]
pub struct ScannedFile {
    /// Original text (for R4's string-literal search).
    pub raw: String,
    /// Comment/string/char-free text, same length as `raw`.
    pub code: String,
    /// `(1-based line, comment text)` for every comment, in order.
    pub comments: Vec<(usize, String)>,
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
}

/// Lexer state for [`blank_source`].
enum Lex {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Blanks comments, strings and char literals out of Rust source,
/// collecting comment texts. The output has the same byte length as the
/// input; every blanked byte becomes a space (newlines are preserved).
fn blank_source(src: &str) -> (String, Vec<(usize, String)>) {
    let bytes = src.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut cur_comment = String::new();
    let mut cur_comment_line = 0usize;
    let mut line = 1usize;
    let mut state = Lex::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            out[i] = b'\n';
            if let Lex::LineComment = state {
                comments.push((cur_comment_line, std::mem::take(&mut cur_comment)));
                state = Lex::Code;
            }
            line += 1;
            i += 1;
            continue;
        }
        match state {
            Lex::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = Lex::LineComment;
                    cur_comment_line = line;
                    cur_comment.clear();
                    i += 2;
                    continue;
                }
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = Lex::BlockComment(1);
                    cur_comment_line = line;
                    cur_comment.clear();
                    i += 2;
                    continue;
                }
                if b == b'"' {
                    state = Lex::Str;
                    i += 1;
                    continue;
                }
                // String introducers: r"…", r#"…"#, b"…", br#"…"#.
                if (b == b'r' || b == b'b') && !prev_is_ident(bytes, i) {
                    let mut j = i + 1;
                    let mut is_raw = b == b'r';
                    if b == b'b' && bytes.get(j) == Some(&b'r') {
                        is_raw = true;
                        j += 1;
                    }
                    if is_raw {
                        let mut hashes = 0u32;
                        while bytes.get(j) == Some(&b'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&b'"') {
                            state = Lex::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    } else if bytes.get(j) == Some(&b'"') {
                        state = Lex::Str;
                        i = j + 1;
                        continue;
                    }
                    out[i] = b;
                    i += 1;
                    continue;
                }
                if b == b'\'' {
                    // Char literal vs lifetime: a char literal closes with
                    // a quote after one (possibly escaped) character.
                    if bytes.get(i + 1) == Some(&b'\\')
                        || (bytes.get(i + 2) == Some(&b'\'')
                            && bytes.get(i + 1).is_some_and(|c| *c != b'\''))
                    {
                        state = Lex::Char;
                        i += 1;
                        continue;
                    }
                    // Lifetime: drop the quote, keep the identifier.
                    i += 1;
                    continue;
                }
                out[i] = b;
                i += 1;
            }
            Lex::LineComment => {
                cur_comment.push(b as char);
                i += 1;
            }
            Lex::BlockComment(depth) => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = Lex::BlockComment(depth + 1);
                    i += 2;
                } else if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    if depth == 1 {
                        comments.push((cur_comment_line, std::mem::take(&mut cur_comment)));
                        state = Lex::Code;
                    } else {
                        state = Lex::BlockComment(depth - 1);
                    }
                    i += 2;
                } else {
                    cur_comment.push(b as char);
                    i += 1;
                }
            }
            Lex::Str => {
                if b == b'\\' {
                    // An escaped newline (string line-continuation) must
                    // still reach the top-of-loop newline handling, or
                    // line numbering desyncs for the rest of the file.
                    i += if bytes.get(i + 1) == Some(&b'\n') {
                        1
                    } else {
                        2
                    };
                } else if b == b'"' {
                    state = Lex::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Lex::RawStr(hashes) => {
                if b == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        state = Lex::Code;
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
            Lex::Char => {
                if b == b'\\' {
                    i += if bytes.get(i + 1) == Some(&b'\n') {
                        1
                    } else {
                        2
                    };
                } else if b == b'\'' {
                    state = Lex::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if let Lex::LineComment | Lex::BlockComment(_) = state {
        comments.push((cur_comment_line, cur_comment));
    }
    // The blanking above is byte-wise; re-validate as UTF-8 by replacing
    // any orphaned continuation bytes (from blanked multi-byte chars in
    // code position — identifiers are ASCII in this repo) with spaces.
    let code = String::from_utf8(out)
        .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned());
    (code, comments)
}

/// Whether the byte before `i` continues an identifier (so `r` in
/// `for` is not a raw-string introducer).
fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

impl ScannedFile {
    /// Lexes `src` into the scanner's working form.
    pub fn new(src: &str) -> ScannedFile {
        let (code, comments) = blank_source(src);
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let mut f = ScannedFile {
            raw: src.to_owned(),
            code,
            comments,
            line_starts,
            test_ranges: Vec::new(),
        };
        f.test_ranges = f.find_test_ranges();
        f
    }

    /// 1-based line of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// Whether `offset` falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| s <= offset && offset < e)
    }

    /// Comment texts attached to `line` (there can be several).
    fn comments_on(&self, line: usize) -> impl Iterator<Item = &str> {
        self.comments
            .iter()
            .filter(move |&&(l, _)| l == line)
            .map(|(_, t)| t.as_str())
    }

    /// Finds the byte ranges of items annotated `#[cfg(test)]`. The
    /// range starts at the attribute and ends at the close of the
    /// item's brace block (or its terminating `;`).
    fn find_test_ranges(&self) -> Vec<(usize, usize)> {
        let bytes = self.code.as_bytes();
        let mut ranges = Vec::new();
        let mut i = 0usize;
        while let Some(rel) = self.code[i..].find("#[") {
            let attr_start = i + rel;
            let Some((attr_end, content)) = read_attr(&self.code, attr_start) else {
                i = attr_start + 2;
                continue;
            };
            let compact: String = content.chars().filter(|c| !c.is_whitespace()).collect();
            let is_test_cfg = compact.starts_with("cfg(") && compact.contains("test");
            if !is_test_cfg {
                i = attr_end;
                continue;
            }
            // Skip any further attributes, then consume the item.
            let mut j = attr_end;
            loop {
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if self.code[j..].starts_with("#[") {
                    match read_attr(&self.code, j) {
                        Some((end, _)) => j = end,
                        None => break,
                    }
                } else {
                    break;
                }
            }
            let end = item_end(&self.code, j);
            ranges.push((attr_start, end));
            i = end.max(attr_end);
        }
        ranges
    }
}

/// Reads the balanced `#[...]` attribute starting at `start`; returns
/// `(end_offset, inner_text)`.
fn read_attr(code: &str, start: usize) -> Option<(usize, String)> {
    let bytes = code.as_bytes();
    debug_assert!(code[start..].starts_with("#["));
    let mut depth = 0i32;
    for (k, &b) in bytes.iter().enumerate().skip(start + 1) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some((k + 1, code[start + 2..k].to_owned()));
                }
            }
            _ => {}
        }
    }
    None
}

/// Finds the end of the item starting at `start`: the matching close of
/// its first brace block, or its terminating `;` if one comes first.
fn item_end(code: &str, start: usize) -> usize {
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    let mut seen_brace = false;
    for (k, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'{' => {
                depth += 1;
                seen_brace = true;
            }
            b'}' => {
                depth -= 1;
                if seen_brace && depth == 0 {
                    return k + 1;
                }
            }
            b';' if !seen_brace && depth == 0 => return k + 1,
            _ => {}
        }
    }
    code.len()
}

/// A parsed `// xlint: allow(rule, "justification")` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma suppresses.
    pub line: usize,
    /// Rule being allowed (`None` for an unknown name).
    pub rule: Option<Rule>,
    /// The quoted justification (`None` when missing/empty).
    pub justification: Option<String>,
}

/// Extracts every pragma in a scanned file.
///
/// Doc comments are skipped: a pragma lives in a plain `//` comment, and
/// rustdoc prose is allowed to *show* the pragma syntax without it being
/// parsed as one.
pub fn pragmas(file: &ScannedFile) -> Vec<Pragma> {
    let mut out = Vec::new();
    for &(line, ref text) in &file.comments {
        if text.starts_with('/') || text.starts_with('!') || text.starts_with('*') {
            continue;
        }
        let Some(pos) = text.find("xlint: allow(") else {
            continue;
        };
        let rest = &text[pos + "xlint: allow(".len()..];
        // Rule name runs to the first `,` or `)`; the justification is a
        // quoted string that may itself contain parentheses, so it is
        // delimited by its quotes, not by scanning for `)`.
        let name_end = rest.find([',', ')']).unwrap_or(rest.len());
        let name = rest[..name_end].trim();
        let justification = rest[name_end..]
            .strip_prefix(',')
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('"'))
            .and_then(|s| s.split_once('"'))
            .filter(|(_, after)| after.trim_start().starts_with(')'))
            .map(|(just, _)| just.trim())
            .filter(|s| !s.is_empty())
            .map(str::to_owned);
        out.push(Pragma {
            line,
            rule: Rule::from_name(name),
            justification,
        });
    }
    out
}

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// R1 applies.
    pub no_panic: bool,
    /// R2 applies (it applies everywhere; kept switchable for tests).
    pub safety: bool,
    /// R3 applies.
    pub io: bool,
    /// R5 applies.
    pub doc_pub: bool,
    /// R6 applies.
    pub lock_free: bool,
    /// R7 applies.
    pub metrics: bool,
}

impl RuleSet {
    /// Every file-level rule on — what fixtures and explicit paths get.
    pub fn all() -> RuleSet {
        RuleSet {
            no_panic: true,
            safety: true,
            io: true,
            doc_pub: true,
            lock_free: true,
            metrics: true,
        }
    }
}

/// Scans one file's source under `rules`, honoring pragmas. This is the
/// pure core of the tool: no filesystem access, fully unit-testable.
pub fn check_source(path: &Path, src: &str, rules: RuleSet) -> Vec<Violation> {
    let file = ScannedFile::new(src);
    let prag = pragmas(&file);
    let mut raw: Vec<Violation> = Vec::new();

    if rules.no_panic {
        no_panic_rule(path, &file, &mut raw);
    }
    if rules.safety {
        safety_rule(path, &file, &mut raw);
    }
    if rules.io {
        io_rule(path, &file, &mut raw);
    }
    if rules.doc_pub {
        doc_pub_rule(path, &file, &mut raw);
    }
    if rules.lock_free {
        lock_free_rule(path, &file, &mut raw);
    }
    if rules.metrics {
        metrics_rule(path, &file, &mut raw);
    }

    // Apply pragmas: a well-formed pragma on the same line suppresses
    // that rule's findings; malformed pragmas become findings.
    let mut out: Vec<Violation> = Vec::new();
    for v in raw {
        let suppressed = prag.iter().any(|p| {
            p.line == v.line
                && p.justification.is_some()
                && (p.rule == Some(v.rule)
                    // R7's clock half deliberately overlaps R3: a raw
                    // clock read already justified under io-confinement
                    // stays justified — one pragma, not two.
                    || (v.rule == Rule::MetricsDiscipline
                        && p.rule == Some(Rule::IoConfinement)
                        && v.msg.contains("Instant::now")))
        });
        if !suppressed {
            out.push(v);
        }
    }
    for p in &prag {
        if p.rule.is_none() {
            out.push(Violation {
                path: path.to_owned(),
                line: p.line,
                rule: Rule::BadPragma,
                msg: "pragma names an unknown rule".into(),
            });
        } else if p.justification.is_none() {
            out.push(Violation {
                path: path.to_owned(),
                line: p.line,
                rule: Rule::BadPragma,
                msg: "pragma is missing a quoted, non-empty justification".into(),
            });
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Iterator over `(byte_offset, word)` identifiers in blanked code.
fn words(code: &str) -> impl Iterator<Item = (usize, &str)> {
    let bytes = code.as_bytes();
    let mut i = 0usize;
    std::iter::from_fn(move || {
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_alphabetic() || b == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                return Some((start, &code[start..i]));
            }
            i += 1;
        }
        None
    })
}

/// First non-whitespace byte at or after `i`.
fn next_nonws(bytes: &[u8], mut i: usize) -> Option<(usize, u8)> {
    while i < bytes.len() {
        if !bytes[i].is_ascii_whitespace() {
            return Some((i, bytes[i]));
        }
        i += 1;
    }
    None
}

/// Last non-whitespace byte before `i`.
fn prev_nonws(bytes: &[u8], i: usize) -> Option<u8> {
    bytes[..i]
        .iter()
        .rev()
        .find(|b| !b.is_ascii_whitespace())
        .copied()
}

/// Whether the call whose open paren sits at `open` has its matching
/// close paren immediately followed by `?`. Operates on blanked code, so
/// parens inside string literals never skew the balance.
fn call_is_try_propagated(bytes: &[u8], open: Option<usize>) -> bool {
    let Some(open) = open else { return false };
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return next_nonws(bytes, i + 1).is_some_and(|(_, b)| b == b'?');
                }
            }
            _ => {}
        }
        i += 1;
    }
    false
}

/// R1: panicking constructs in non-test code.
fn no_panic_rule(path: &Path, file: &ScannedFile, out: &mut Vec<Violation>) {
    let bytes = file.code.as_bytes();
    for (off, word) in words(&file.code) {
        if file.in_test_code(off) {
            continue;
        }
        let after = next_nonws(bytes, off + word.len());
        let flagged = match word {
            // Method calls only: `.unwrap()` / `.expect(`; a local fn
            // named `expect` would be a different thing entirely. A call
            // whose close paren is immediately followed by `?` is a
            // user-defined fallible method (std's panicking forms return
            // a bare value, which `?` would reject), so it is skipped.
            "unwrap" | "expect" => {
                prev_nonws(bytes, off) == Some(b'.')
                    && after.is_some_and(|(_, b)| b == b'(')
                    && !call_is_try_propagated(bytes, after.map(|(i, _)| i))
            }
            // Macro invocations.
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                after.is_some_and(|(_, b)| b == b'!')
            }
            _ => false,
        };
        if flagged {
            out.push(Violation {
                path: path.to_owned(),
                line: file.line_of(off),
                rule: Rule::NoPanic,
                msg: format!("`{word}` in non-test serving code (return a typed error, or justify with `// xlint: allow(no-panic, \"…\")`)"),
            });
        }
    }
}

/// R2: `unsafe` without a nearby `// SAFETY:` comment. The comment must
/// sit on the same line or within the 3 lines above the `unsafe` token.
fn safety_rule(path: &Path, file: &ScannedFile, out: &mut Vec<Violation>) {
    for (off, word) in words(&file.code) {
        if word != "unsafe" {
            continue;
        }
        let line = file.line_of(off);
        let covered = (line.saturating_sub(3)..=line)
            .any(|l| file.comments_on(l).any(|c| c.contains("SAFETY:")));
        if !covered {
            out.push(Violation {
                path: path.to_owned(),
                line,
                rule: Rule::SafetyComment,
                msg:
                    "`unsafe` without a `// SAFETY:` comment on the same line or the 3 lines above"
                        .into(),
            });
        }
    }
}

/// R3: ambient IO / clock tokens outside the storage layer. Matches the
/// exact path spellings rustfmt produces (no spaces around `::`).
fn io_rule(path: &Path, file: &ScannedFile, out: &mut Vec<Violation>) {
    const NEEDLES: [&str; 4] = ["std::fs", "std::net", "Instant::now", "SystemTime"];
    let code = &file.code;
    for needle in NEEDLES {
        let mut from = 0usize;
        while let Some(rel) = code[from..].find(needle) {
            let off = from + rel;
            from = off + needle.len();
            // Word-boundary both sides so e.g. `MySystemTime` is not hit.
            let before_ok = off == 0 || {
                let b = code.as_bytes()[off - 1];
                !(b.is_ascii_alphanumeric() || b == b'_' || b == b':')
            };
            let after_ok = code[off + needle.len()..]
                .bytes()
                .next()
                .is_none_or(|b| !(b.is_ascii_alphanumeric() || b == b'_'));
            if !(before_ok && after_ok) || file.in_test_code(off) {
                continue;
            }
            out.push(Violation {
                path: path.to_owned(),
                line: file.line_of(off),
                rule: Rule::IoConfinement,
                msg: format!("`{needle}` outside `core::store`/`bench` breaks kernel determinism"),
            });
        }
    }
}

/// Item keywords R5 requires documentation on.
const DOC_ITEMS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

/// R5: undocumented `pub` item declarations. `pub(crate)`/`pub(super)`
/// visibility and `pub use` re-exports are exempt; struct fields and
/// enum variants are not item declarations and are exempt too.
fn doc_pub_rule(path: &Path, file: &ScannedFile, out: &mut Vec<Violation>) {
    let bytes = file.code.as_bytes();
    for (off, word) in words(&file.code) {
        if word != "pub" || file.in_test_code(off) {
            continue;
        }
        // Restricted visibility: `pub(` …
        if next_nonws(bytes, off + 3).is_some_and(|(_, b)| b == b'(') {
            continue;
        }
        // Walk modifier keywords to the item keyword.
        let mut item: Option<&str> = None;
        let mut probe = off + 3;
        for _ in 0..4 {
            let Some((woff, w)) = words(&file.code[probe..])
                .next()
                .map(|(o, w)| (probe + o, w))
            else {
                break;
            };
            match w {
                "unsafe" | "async" | "extern" => probe = woff + w.len(),
                "const" => {
                    // `pub const fn f` vs `pub const X: …`.
                    let next = words(&file.code[woff + w.len()..]).next().map(|(_, w)| w);
                    if next == Some("fn") {
                        item = Some("fn");
                    } else {
                        item = Some("const");
                    }
                    break;
                }
                other => {
                    if DOC_ITEMS.contains(&other) {
                        item = Some(other);
                    }
                    break;
                }
            }
        }
        let Some(item) = item else { continue };
        let line = file.line_of(off);
        if !has_doc_above(file, off) {
            let name = words(&file.code[off..])
                .map(|(_, w)| w)
                .skip_while(|w| !DOC_ITEMS.contains(w))
                .nth(1)
                .unwrap_or("?")
                .to_owned();
            out.push(Violation {
                path: path.to_owned(),
                line,
                rule: Rule::DocPub,
                msg: format!("undocumented `pub {item} {name}`"),
            });
        }
    }
}

/// Whether the item whose `pub` keyword sits at `pub_off` carries a doc
/// comment. Walks *backward* over whitespace and attribute groups
/// (`#[…]`, possibly multi-line, in any order relative to the docs)
/// until it hits preceding code, then checks whether any comment in the
/// attachment region is a doc comment (`///`, `//!` or `/** … */` — in
/// the blanked form their text starts with `/`, `!` or `*`).
fn has_doc_above(file: &ScannedFile, pub_off: usize) -> bool {
    let bytes = file.code.as_bytes();
    let mut p = pub_off; // exclusive end of the region scanned so far
    loop {
        while p > 0 && bytes[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        if p > 0 && bytes[p - 1] == b']' {
            // Backward-match to the opening `[` of a `#[…]` group.
            let mut depth = 0i32;
            let mut q = p;
            let mut opener = None;
            while q > 0 {
                q -= 1;
                match bytes[q] {
                    b']' => depth += 1,
                    b'[' => {
                        depth -= 1;
                        if depth == 0 {
                            opener = Some(q);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if let Some(q) = opener {
                if q > 0 && bytes[q - 1] == b'#' {
                    p = q - 1;
                    continue;
                }
            }
            return false;
        }
        break;
    }
    let start_line = if p == 0 { 0 } else { file.line_of(p - 1) };
    let end_line = file.line_of(pub_off);
    file.comments.iter().any(|&(l, ref t)| {
        l > start_line
            && l <= end_line
            && (t.starts_with('/') || t.starts_with('!') || t.starts_with('*'))
    })
}

/// R6: lock acquisitions in warm estimate-path modules. The wait-free
/// serving contract (`engine::snapshot`) promises that estimates never
/// block on a mutation; a `Mutex`/`RwLock` acquisition on that path
/// would silently void it. Declaring a lock is fine (the coefficient
/// cache keeps a writer-side publication lock); *acquiring* one —
/// `.lock()`, `.read()`, `.write()` method calls — is flagged unless a
/// same-line pragma justifies it as writer-side only.
fn lock_free_rule(path: &Path, file: &ScannedFile, out: &mut Vec<Violation>) {
    let bytes = file.code.as_bytes();
    for (off, word) in words(&file.code) {
        if !matches!(word, "lock" | "read" | "write") || file.in_test_code(off) {
            continue;
        }
        // Method-call form only: `.lock()` / `.read()` / `.write()` with
        // no arguments — the std lock-acquisition shapes. A call taking
        // arguments (e.g. `io::Write::write(buf)`) is something else.
        // Blanked string literals leave spaces in `code`, so an
        // apparently-empty argument span must also be empty in `raw`
        // (`w.write(b"…")` is IO, not an acquisition).
        let is_acquisition = prev_nonws(bytes, off) == Some(b'.')
            && next_nonws(bytes, off + word.len()).is_some_and(|(i, b)| {
                b == b'('
                    && next_nonws(bytes, i + 1)
                        .is_some_and(|(k, b)| b == b')' && file.raw[i + 1..k].trim().is_empty())
            });
        if is_acquisition {
            out.push(Violation {
                path: path.to_owned(),
                line: file.line_of(off),
                rule: Rule::LockFreeServing,
                msg: format!(
                    "`.{word}()` acquisition in a warm estimate-path module — serve from the published snapshot, or justify with `// xlint: allow(lock-free-serving, \"…\")`"
                ),
            });
        }
    }
}

/// Offset of the closing quote of the string literal whose opening
/// quote sits at `open` in the raw text (escape-aware).
fn str_end(raw: &[u8], open: usize) -> Option<usize> {
    let mut i = open + 1;
    while i < raw.len() {
        match raw[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

/// R7: metrics discipline. Two halves:
///
/// * **Registration** — every `.counter(…)` / `.histogram(…)` call
///   must pass a string-literal metric name followed by a non-empty
///   string-literal doc. The registry renders an empty doc as
///   `(undocumented)`; this rule makes that state unreachable from
///   checked code, and literal names keep every metric greppable.
/// * **Clock confinement** — raw `Instant::now` belongs to
///   `xobs::clock` alone. Instrumented code times itself through
///   `Recorder::span` / `StageClock`, so the reading lands in a
///   histogram instead of vanishing into an ad-hoc local.
///
/// The argument scan reads the *raw* text (blanking erases string
/// quotes along with their contents); offsets line up because blanked
/// and raw text have identical byte lengths.
fn metrics_rule(path: &Path, file: &ScannedFile, out: &mut Vec<Violation>) {
    let bytes = file.code.as_bytes();
    let raw = file.raw.as_bytes();
    for (off, word) in words(&file.code) {
        if !matches!(word, "counter" | "histogram") || file.in_test_code(off) {
            continue;
        }
        // Method-call form only: `.counter(` / `.histogram(`.
        if prev_nonws(bytes, off) != Some(b'.') {
            continue;
        }
        let Some((open, paren)) = next_nonws(bytes, off + word.len()) else {
            continue;
        };
        if paren != b'(' {
            continue;
        }
        let line = file.line_of(off);
        let Some((q0, c0)) = next_nonws(raw, open + 1) else {
            continue;
        };
        if c0 != b'"' {
            out.push(Violation {
                path: path.to_owned(),
                line,
                rule: Rule::MetricsDiscipline,
                msg: format!(
                    "`.{word}(…)` registration with a non-literal metric name — pass a `\"…\"` literal so the metric stays greppable"
                ),
            });
            continue;
        }
        let doc_ok = str_end(raw, q0)
            .and_then(|q1| next_nonws(raw, q1 + 1))
            .filter(|&(_, b)| b == b',')
            .and_then(|(ci, _)| next_nonws(raw, ci + 1))
            .filter(|&(_, b)| b == b'"')
            .and_then(|(d0, _)| str_end(raw, d0).map(|d1| (d0, d1)))
            .is_some_and(|(d0, d1)| raw[d0 + 1..d1].iter().any(|b| !b.is_ascii_whitespace()));
        if !doc_ok {
            out.push(Violation {
                path: path.to_owned(),
                line,
                rule: Rule::MetricsDiscipline,
                msg: format!(
                    "`.{word}(…)` registration without a non-empty string-literal doc — the registry would render it `(undocumented)`"
                ),
            });
        }
    }
    // Clock confinement (same needle mechanics as R3).
    let needle = "Instant::now";
    let mut from = 0usize;
    while let Some(rel) = file.code[from..].find(needle) {
        let off = from + rel;
        from = off + needle.len();
        let before_ok = off == 0 || {
            let b = bytes[off - 1];
            !(b.is_ascii_alphanumeric() || b == b'_' || b == b':')
        };
        let after_ok = file.code[off + needle.len()..]
            .bytes()
            .next()
            .is_none_or(|b| !(b.is_ascii_alphanumeric() || b == b'_'));
        if !(before_ok && after_ok) || file.in_test_code(off) {
            continue;
        }
        out.push(Violation {
            path: path.to_owned(),
            line: file.line_of(off),
            rule: Rule::MetricsDiscipline,
            msg: "raw `Instant::now` outside `xobs::clock` — time warm code with `Recorder::span`/`StageClock` so the reading lands in a histogram"
                .into(),
        });
    }
}

/// R4 input: the registered benches of the bench crate and the CI text.
#[derive(Debug, Default)]
pub struct BenchCiInput {
    /// `(bench name, bench source text)` pairs.
    pub benches: Vec<(String, String)>,
    /// Contents of `.github/workflows/ci.yml`.
    pub ci: String,
}

/// R4: every bench whose source mentions a `BENCH_*.json` artifact must
/// be invoked by name in CI.
///
/// Detection keys on `XMLEST_BENCH_JSON` — the criterion-shim env hook
/// that makes a bench emit its artifact — rather than the `BENCH_`
/// substring, which false-positives on identifiers like
/// `DEPT_BENCH_NODES`.
pub fn check_bench_ci(input: &BenchCiInput) -> Vec<Violation> {
    let mut out = Vec::new();
    for (name, src) in &input.benches {
        let writes_artifact = src.contains("XMLEST_BENCH_JSON");
        let in_ci = input.ci.contains(&format!("--bench {name}"));
        if writes_artifact && !in_ci {
            out.push(Violation {
                path: PathBuf::from(format!("crates/bench/benches/{name}.rs")),
                line: 1,
                rule: Rule::BenchInCi,
                msg: format!(
                    "bench `{name}` writes a BENCH_*.json artifact but `.github/workflows/ci.yml` never runs `--bench {name}`"
                ),
            });
        }
    }
    out
}

/// Extracts `[[bench]]` names from a bench-crate `Cargo.toml` (minimal
/// TOML subset: `name = "…"` lines inside `[[bench]]` tables).
pub fn bench_names(cargo_toml: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut in_bench = false;
    for line in cargo_toml.lines() {
        let t = line.trim();
        if t.starts_with("[[") {
            in_bench = t == "[[bench]]";
        } else if t.starts_with('[') {
            in_bench = false;
        } else if in_bench && t.starts_with("name") {
            if let Some(q) = t.find('"') {
                if let Some(e) = t[q + 1..].find('"') {
                    names.push(t[q + 1..q + 1 + e].to_owned());
                }
            }
        }
    }
    names
}

/// Crates whose `src/` falls under R1/R3/R7 (serving crates).
pub const SERVING_CRATES: [&str; 6] = ["core", "engine", "xml", "predicate", "query", "xobs"];

/// Crates whose `src/` falls under R5.
pub const DOC_CRATES: [&str; 3] = ["core", "engine", "xobs"];

/// Modules on the warm estimate path — R6 keeps them free of lock
/// acquisitions so the wait-free serving contract holds by
/// construction. (The prepared cache is deliberately absent: its locks
/// are cold-path; snapshots carry a frozen lock-free view of it.)
pub const WARM_SERVING_FILES: [&str; 4] = [
    "crates/core/src/estimator.rs",
    "crates/engine/src/snapshot.rs",
    "crates/shims/arcswap/src/lib.rs",
    "crates/xobs/src/lib.rs",
];

/// Classifies a workspace-relative path into the rule set that applies
/// in a full-workspace scan. Returns `None` for files not scanned at
/// all (shim internals get R2 only — they are vendored stand-ins).
pub fn rules_for(rel: &Path) -> Option<RuleSet> {
    let s = rel.to_string_lossy().replace('\\', "/");
    if s.contains("/fixtures/") || s.starts_with("target/") || s.contains("/target/") {
        return None;
    }
    let mut rules = RuleSet {
        safety: true,
        ..RuleSet::default()
    };
    for c in SERVING_CRATES {
        if s.starts_with(&format!("crates/{c}/src/")) {
            rules.no_panic = true;
            // The storage backend is the one place ambient IO belongs,
            // and `xobs::clock` is the one sanctioned `Instant::now`.
            rules.io = s != "crates/core/src/store.rs" && s != "crates/xobs/src/clock.rs";
            // R7 shares both escape hatches: the store's timestamps and
            // the clock shim implement what the rule confines.
            rules.metrics = rules.io;
        }
    }
    for c in DOC_CRATES {
        if s.starts_with(&format!("crates/{c}/src/")) {
            rules.doc_pub = true;
        }
    }
    if WARM_SERVING_FILES.contains(&s.as_str()) {
        rules.lock_free = true;
    }
    Some(rules)
}

/// Recursively collects `.rs` files under `root`, skipping `target/`
/// and fixture corpora. Paths come back workspace-relative and sorted.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = BTreeSet::new();
    let mut stack = vec![root.to_owned()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path.strip_prefix(root).unwrap_or(&path).to_owned();
                out.insert(rel);
            }
        }
    }
    Ok(out.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(src: &str) -> Vec<Violation> {
        check_source(Path::new("t.rs"), src, RuleSet::all())
    }

    fn count(src: &str, rule: Rule) -> usize {
        rules(src).iter().filter(|v| v.rule == rule).count()
    }

    #[test]
    fn unwrap_in_code_flagged() {
        assert_eq!(count("fn f() { x.unwrap(); }", Rule::NoPanic), 1);
        assert_eq!(count("fn f() { x.expect(\"m\"); }", Rule::NoPanic), 1);
        assert_eq!(count("fn f() { panic!(\"m\"); }", Rule::NoPanic), 1);
        assert_eq!(count("fn f() { unreachable!() }", Rule::NoPanic), 1);
        assert_eq!(count("fn f() { todo!() }", Rule::NoPanic), 1);
    }

    #[test]
    fn lookalikes_not_flagged() {
        // Different identifiers entirely.
        assert_eq!(count("fn f() { x.unwrap_or(0); }", Rule::NoPanic), 0);
        assert_eq!(count("fn f() { x.unwrap_or_default(); }", Rule::NoPanic), 0);
        assert_eq!(count("fn f() { x.expect_err(\"m\"); }", Rule::NoPanic), 0);
        // Not a method call.
        assert_eq!(count("fn expect(x: u8) {}", Rule::NoPanic), 0);
        // debug_assert is allowed (compiled out in release).
        assert_eq!(count("fn f() { debug_assert!(x); }", Rule::NoPanic), 0);
        // A `?`-propagated call is a user-defined fallible method, not
        // std's panicking form (which returns a bare value).
        assert_eq!(count("fn f() -> R { p.expect(\">\")?; }", Rule::NoPanic), 0);
        assert_eq!(
            count("fn f() -> R { p.expect(inner(a, b))?; }", Rule::NoPanic),
            0
        );
        // …but `?` on a *later* call in the chain does not launder it.
        assert_eq!(
            count("fn f() -> R { x.unwrap().checked()?; }", Rule::NoPanic),
            1
        );
    }

    #[test]
    fn strings_and_comments_ignored() {
        assert_eq!(
            count("fn f() { let s = \"x.unwrap()\"; }", Rule::NoPanic),
            0
        );
        assert_eq!(
            count("// x.unwrap() in a comment\nfn f() {}", Rule::NoPanic),
            0
        );
        assert_eq!(count("/* panic!() */ fn f() {}", Rule::NoPanic), 0);
        assert_eq!(
            count("fn f() { let s = r#\"y.expect(\"q\")\"#; }", Rule::NoPanic),
            0
        );
        // A string closing then real code after it still scans.
        assert_eq!(
            count("fn f() { let s = \"ok\"; x.unwrap(); }", Rule::NoPanic),
            1
        );
    }

    #[test]
    fn char_literals_and_lifetimes() {
        // A char literal containing a quote-like escape must not absorb
        // the rest of the file.
        assert_eq!(
            count("fn f() { let c = '\\''; x.unwrap(); }", Rule::NoPanic),
            1
        );
        // Lifetimes are not char literals.
        assert_eq!(
            count("fn f<'a>(x: &'a Foo) { x.unwrap(); }", Rule::NoPanic),
            1
        );
    }

    #[test]
    fn cfg_test_items_exempt() {
        let src = r#"
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); z.expect("m"); panic!(); }
}
"#;
        assert_eq!(count(src, Rule::NoPanic), 1);
        let src2 = "#[cfg(test)]\nfn helper() { x.unwrap(); }\nfn live() { y.unwrap(); }";
        assert_eq!(count(src2, Rule::NoPanic), 1);
    }

    #[test]
    fn pragma_suppresses_with_justification() {
        let src = "fn f() { x.unwrap(); } // xlint: allow(no-panic, \"startup path, cannot fail\")";
        assert_eq!(rules(src), vec![]);
    }

    #[test]
    fn pragma_without_justification_is_a_violation() {
        let src = "fn f() { x.unwrap(); } // xlint: allow(no-panic)";
        let v = rules(src);
        assert_eq!(v.iter().filter(|v| v.rule == Rule::NoPanic).count(), 1);
        assert_eq!(v.iter().filter(|v| v.rule == Rule::BadPragma).count(), 1);
    }

    #[test]
    fn pragma_unknown_rule_is_a_violation() {
        let src = "fn f() {} // xlint: allow(no-such-rule, \"nope\")";
        assert_eq!(count(src, Rule::BadPragma), 1);
    }

    #[test]
    fn pragma_wrong_rule_does_not_suppress() {
        let src = "fn f() { x.unwrap(); } // xlint: allow(safety-comment, \"mismatched\")";
        assert_eq!(count(src, Rule::NoPanic), 1);
    }

    #[test]
    fn pragma_justification_may_contain_parens() {
        let src = "fn f() { x.unwrap(); } // xlint: allow(no-panic, \"take(2) returned exactly 2 bytes\")";
        assert_eq!(rules(src), vec![]);
    }

    #[test]
    fn escaped_newline_in_string_keeps_lines_aligned() {
        // A `\`-continued string must not desync line numbering: the
        // pragma three lines below still suppresses its own line.
        let src = "fn f() {\n    let m = format!(\n        \"two-line \\\n         tail\",\n    );\n    x.unwrap(); // xlint: allow(no-panic, \"aligned\")\n}";
        assert_eq!(rules(src), vec![]);
    }

    #[test]
    fn pragma_in_doc_comment_is_prose_not_pragma() {
        // Rustdoc may *show* the pragma syntax without it parsing as
        // one — neither suppressing nor reported as malformed.
        let src = "/// Example: `// xlint: allow(rule, \"justification\")`.\nfn f() {}";
        assert_eq!(rules(src), vec![]);
        // And a same-line doc comment does not suppress a real violation.
        let src = "fn f() { x.unwrap(); } /** xlint: allow(no-panic, \"doc prose\") */";
        assert_eq!(count(src, Rule::NoPanic), 1);
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        assert_eq!(count("fn f() { unsafe { g() } }", Rule::SafetyComment), 1);
        assert_eq!(
            count(
                "// SAFETY: g has no preconditions here\nfn f() { unsafe { g() } }",
                Rule::SafetyComment
            ),
            0
        );
        assert_eq!(
            count(
                "fn f() { unsafe { g() } } // SAFETY: g has no preconditions",
                Rule::SafetyComment
            ),
            0
        );
        // Too far above (4 lines).
        assert_eq!(
            count(
                "// SAFETY: stale\n\n\n\nfn f() { unsafe { g() } }",
                Rule::SafetyComment
            ),
            1
        );
        // The word in a string is not an unsafe token.
        assert_eq!(
            count("fn f() { let s = \"unsafe\"; }", Rule::SafetyComment),
            0
        );
    }

    #[test]
    fn io_confinement() {
        assert_eq!(
            count("fn f() { std::fs::read(p); }", Rule::IoConfinement),
            1
        );
        assert_eq!(count("use std::fs;", Rule::IoConfinement), 1);
        assert_eq!(
            count("fn f() { let t = Instant::now(); }", Rule::IoConfinement),
            1
        );
        assert_eq!(count("fn f(t: SystemTime) {}", Rule::IoConfinement), 1);
        assert_eq!(count("use std::net::TcpStream;", Rule::IoConfinement), 1);
        // Lookalikes.
        assert_eq!(count("fn f(t: MySystemTime) {}", Rule::IoConfinement), 0);
        assert_eq!(count("fn f() { foo::std::fs(); }", Rule::IoConfinement), 0);
        // Strings don't count.
        assert_eq!(
            count("fn f() { let s = \"std::fs\"; }", Rule::IoConfinement),
            0
        );
    }

    #[test]
    fn doc_pub_rule_basics() {
        assert_eq!(count("pub fn f() {}", Rule::DocPub), 1);
        assert_eq!(count("/// Doc.\npub fn f() {}", Rule::DocPub), 0);
        assert_eq!(count("pub(crate) fn f() {}", Rule::DocPub), 0);
        assert_eq!(count("pub use foo::Bar;", Rule::DocPub), 0);
        assert_eq!(
            count("/// Doc.\n#[derive(Debug)]\npub struct S;", Rule::DocPub),
            0
        );
        assert_eq!(
            count("#[derive(Debug)]\n/// Doc.\npub struct S;", Rule::DocPub),
            0
        );
        assert_eq!(count("#[derive(Debug)]\npub struct S;", Rule::DocPub), 1);
        // Multi-line attribute between doc and item.
        assert_eq!(
            count(
                "/// Doc.\n#[cfg_attr(\n    feature = \"x\",\n    derive(Debug)\n)]\npub enum E {}",
                Rule::DocPub
            ),
            0
        );
        // Modifier chains.
        assert_eq!(count("/// D.\npub const fn f() {}", Rule::DocPub), 0);
        assert_eq!(count("pub const X: u8 = 0;", Rule::DocPub), 1);
        assert_eq!(count("/// D.\npub unsafe fn f() {}", Rule::DocPub), 0);
        // Fields are not items.
        assert_eq!(
            count("/// D.\npub struct S {\n    pub x: u8,\n}", Rule::DocPub),
            0
        );
    }

    #[test]
    fn bench_ci_cross_check() {
        let input = BenchCiInput {
            benches: vec![
                (
                    "wired".into(),
                    "// XMLEST_BENCH_JSON=BENCH_wired.json".into(),
                ),
                (
                    "orphan".into(),
                    "// XMLEST_BENCH_JSON=BENCH_orphan.json".into(),
                ),
                (
                    "no_artifact".into(),
                    "const N: u64 = DEPT_BENCH_NODES;".into(),
                ),
            ],
            ci: "run: cargo bench -p xmlest-bench --bench wired".into(),
        };
        let v = check_bench_ci(&input);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("orphan"));
    }

    #[test]
    fn bench_names_parsed_from_toml() {
        let toml = "[package]\nname = \"x\"\n[[bench]]\nname = \"a\"\nharness = false\n[[bench]]\nname = \"b\"\n";
        assert_eq!(bench_names(toml), vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn rules_for_classifies_paths() {
        let r = rules_for(Path::new("crates/core/src/grid.rs")).unwrap();
        assert!(r.no_panic && r.io && r.doc_pub && r.safety);
        let r = rules_for(Path::new("crates/core/src/store.rs")).unwrap();
        assert!(r.no_panic && !r.io && r.doc_pub);
        let r = rules_for(Path::new("crates/xml/src/tree.rs")).unwrap();
        assert!(r.no_panic && r.io && !r.doc_pub);
        let r = rules_for(Path::new("tests/alloc_discipline.rs")).unwrap();
        assert!(!r.no_panic && r.safety && !r.io && !r.doc_pub);
        let r = rules_for(Path::new("crates/bench/benches/substrate.rs")).unwrap();
        assert!(!r.no_panic && !r.io);
        assert!(rules_for(Path::new("crates/xlint/fixtures/x.rs")).is_none());
    }

    #[test]
    fn raw_string_with_hashes_containing_quotes() {
        let src = "fn f() { let s = r##\"a \"quoted\" panic!()\"##; x.unwrap(); }";
        assert_eq!(count(src, Rule::NoPanic), 1);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner panic!() */ still comment x.unwrap() */ fn f() {}";
        assert_eq!(count(src, Rule::NoPanic), 0);
    }

    #[test]
    fn lock_acquisitions_flagged() {
        assert_eq!(
            count(
                "fn f(m: &Mutex<u8>) { let _ = m.lock(); }",
                Rule::LockFreeServing
            ),
            1
        );
        assert_eq!(
            count(
                "fn f(l: &RwLock<u8>) { let _ = l.read(); }",
                Rule::LockFreeServing
            ),
            1
        );
        assert_eq!(
            count(
                "fn f(l: &RwLock<u8>) { let _ = l.write(); }",
                Rule::LockFreeServing
            ),
            1
        );
    }

    #[test]
    fn lock_free_rule_skips_non_acquisitions() {
        // Calls with arguments are IO/writes, not lock acquisitions.
        assert_eq!(
            count(
                "fn f(w: &mut Vec<u8>) { w.write(b); }",
                Rule::LockFreeServing
            ),
            0
        );
        // A string-literal argument is blanked to spaces by the lexer
        // but the call still has an argument — not an acquisition.
        assert_eq!(
            count(
                "fn f(w: &mut Vec<u8>) { w.write(b\"state\"); }",
                Rule::LockFreeServing
            ),
            0
        );
        // `write!` macro, free fn call, and declaring a lock are fine.
        assert_eq!(
            count("fn f() { write!(out, \"x\"); }", Rule::LockFreeServing),
            0
        );
        assert_eq!(count("fn f() { read(); }", Rule::LockFreeServing), 0);
        assert_eq!(
            count(
                "struct S { m: Mutex<()>, l: RwLock<u8> }",
                Rule::LockFreeServing
            ),
            0
        );
        // Test code is exempt.
        assert_eq!(
            count(
                "#[cfg(test)] mod t { fn f(m: &Mutex<u8>) { m.lock(); } }",
                Rule::LockFreeServing
            ),
            0
        );
    }

    #[test]
    fn lock_free_pragma_suppresses() {
        let src = "fn f(m: &Mutex<u8>) { let _ = m.lock(); // xlint: allow(lock-free-serving, \"writer side\")\n}";
        assert_eq!(count(src, Rule::LockFreeServing), 0);
    }

    #[test]
    fn metrics_registration_requires_literal_name_and_doc() {
        // Clean: literal name + non-empty literal doc, multi-line form
        // (what rustfmt produces at the real registration sites).
        assert_eq!(
            count(
                "fn f(r: &Recorder) { r.counter(\n    \"m_total\",\n    \"Things counted.\",\n); }",
                Rule::MetricsDiscipline
            ),
            0
        );
        assert_eq!(
            count(
                "fn f(r: &Recorder) { r.histogram(\"h_ns\", \"Latency, log-bucketed.\"); }",
                Rule::MetricsDiscipline
            ),
            0
        );
        // Missing doc argument entirely.
        assert_eq!(
            count(
                "fn f(r: &Recorder) { r.counter(\"m_total\"); }",
                Rule::MetricsDiscipline
            ),
            1
        );
        // Empty (or whitespace-only) doc.
        assert_eq!(
            count(
                "fn f(r: &Recorder) { r.counter(\"m_total\", \"\"); }",
                Rule::MetricsDiscipline
            ),
            1
        );
        assert_eq!(
            count(
                "fn f(r: &Recorder) { r.histogram(\"h_ns\", \"  \"); }",
                Rule::MetricsDiscipline
            ),
            1
        );
        // Non-literal name.
        assert_eq!(
            count(
                "fn f(r: &Recorder) { r.counter(name, doc); }",
                Rule::MetricsDiscipline
            ),
            1
        );
        // A free fn named `counter` is not a registration; nor is a
        // field access without a call.
        assert_eq!(count("fn f() { counter(1); }", Rule::MetricsDiscipline), 0);
        assert_eq!(
            count("fn f(m: &M) -> u64 { m.counter }", Rule::MetricsDiscipline),
            0
        );
        // Test code is exempt.
        assert_eq!(
            count(
                "#[cfg(test)] mod t { fn f(r: &R) { r.counter(n, d); } }",
                Rule::MetricsDiscipline
            ),
            0
        );
    }

    #[test]
    fn metrics_clock_confinement() {
        assert_eq!(
            count(
                "fn f() { let t = Instant::now(); }",
                Rule::MetricsDiscipline
            ),
            1
        );
        // Its own pragma suppresses…
        let src = "fn f() { let t = Instant::now(); // xlint: allow(metrics-discipline, \"cold diagnostic path\")\n}";
        assert_eq!(count(src, Rule::MetricsDiscipline), 0);
        // …and so does an io-confinement pragma: the clock half of R7
        // overlaps R3, and one justification covers both.
        let src = "fn f() { let t = Instant::now(); // xlint: allow(io-confinement, \"report-only wall clock\")\n}";
        assert_eq!(count(src, Rule::MetricsDiscipline), 0);
        assert_eq!(count(src, Rule::IoConfinement), 0);
        // An io-confinement pragma does NOT cover the registration half.
        let src =
            "fn f(r: &R) { r.counter(n, d); // xlint: allow(io-confinement, \"wrong rule\")\n}";
        assert_eq!(count(src, Rule::MetricsDiscipline), 1);
        // Lookalikes and test code.
        assert_eq!(
            count("fn f(t: MyInstant::now_ish) {}", Rule::MetricsDiscipline),
            0
        );
        assert_eq!(
            count(
                "#[cfg(test)] mod t { fn f() { Instant::now(); } }",
                Rule::MetricsDiscipline
            ),
            0
        );
    }

    #[test]
    fn xobs_paths_classified() {
        let r = rules_for(Path::new("crates/xobs/src/lib.rs")).unwrap();
        assert!(r.no_panic && r.io && r.doc_pub && r.lock_free && r.metrics);
        // The clock shim implements the sanctioned call site.
        let r = rules_for(Path::new("crates/xobs/src/clock.rs")).unwrap();
        assert!(r.no_panic && !r.io && !r.metrics && !r.lock_free);
        let r = rules_for(Path::new("crates/engine/src/telemetry.rs")).unwrap();
        assert!(r.metrics && r.doc_pub);
        // The store keeps its timestamp escape hatch for R7 too.
        let r = rules_for(Path::new("crates/core/src/store.rs")).unwrap();
        assert!(!r.metrics && !r.io);
    }

    #[test]
    fn warm_files_get_lock_free_rule() {
        let r = rules_for(Path::new("crates/engine/src/snapshot.rs")).unwrap();
        assert!(r.lock_free);
        let r = rules_for(Path::new("crates/core/src/estimator.rs")).unwrap();
        assert!(r.lock_free);
        let r = rules_for(Path::new("crates/shims/arcswap/src/lib.rs")).unwrap();
        assert!(r.lock_free && r.safety && !r.no_panic);
        // The prepared cache's locks are cold-path: not a warm module.
        let r = rules_for(Path::new("crates/engine/src/prepared.rs")).unwrap();
        assert!(!r.lock_free);
    }
}
