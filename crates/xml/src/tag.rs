//! Interned element tags.
//!
//! Element tags repeat massively in XML data (a DBLP-scale document has
//! ~0.5M nodes but only a few dozen distinct tags), so trees store a
//! compact [`TagId`] per node and a side table ([`TagInterner`]) owns the
//! strings. Predicates such as `elementtag = faculty` compare `TagId`s,
//! which is a single integer comparison.

use std::collections::HashMap;

/// Compact identifier for an interned element tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u32);

impl TagId {
    /// Index into the interner's table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional map between tag names and [`TagId`]s.
///
/// Insertion order is stable: the first distinct tag interned gets id 0,
/// the second id 1, and so on. This makes generated data deterministic
/// across runs given a fixed generation order.
#[derive(Debug, Default, Clone)]
pub struct TagInterner {
    names: Vec<String>,
    lookup: HashMap<String, TagId>,
}

impl TagInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id. Idempotent.
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.lookup.get(name) {
            return id;
        }
        let id = TagId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.lookup.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned tag without inserting.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.lookup.get(name).copied()
    }

    /// Resolves an id back to its tag name.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct tags interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no tag has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(TagId, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TagId(i as u32), n.as_str()))
    }

    /// Rebuilds the reverse lookup table; needed after deserialization
    /// because the `lookup` map is not serialized.
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), TagId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_ordered() {
        let mut t = TagInterner::new();
        let a = t.intern("article");
        let b = t.intern("author");
        let a2 = t.intern("article");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a, TagId(0));
        assert_eq!(b, TagId(1));
        assert_eq!(t.name(a), "article");
        assert_eq!(t.name(b), "author");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn get_does_not_insert() {
        let mut t = TagInterner::new();
        assert!(t.get("x").is_none());
        t.intern("x");
        assert_eq!(t.get("x"), Some(TagId(0)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut t = TagInterner::new();
        for name in ["a", "b", "c"] {
            t.intern(name);
        }
        let collected: Vec<_> = t.iter().map(|(id, n)| (id.0, n.to_owned())).collect();
        assert_eq!(
            collected,
            vec![
                (0, "a".to_owned()),
                (1, "b".to_owned()),
                (2, "c".to_owned())
            ]
        );
    }

    #[test]
    fn rebuild_lookup_restores_reverse_map() {
        let mut t = TagInterner::new();
        t.intern("a");
        t.intern("b");
        let mut clone = TagInterner {
            names: t.names.clone(),
            lookup: HashMap::new(),
        };
        assert!(clone.get("a").is_none());
        clone.rebuild_lookup();
        assert_eq!(clone.get("a"), Some(TagId(0)));
        assert_eq!(clone.get("b"), Some(TagId(1)));
    }
}
