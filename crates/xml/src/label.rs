//! Interval ("position") labels — Section 3.1 of the paper.
//!
//! Every node carries a `(start, end)` pair with `start <= end` such that:
//!
//! * `start` is the node's pre-order (document) position;
//! * `end` is at least `start` and at least the `end` of every descendant —
//!   concretely, the largest `start` occurring in the subtree.
//!
//! Consequently two intervals are either disjoint or strictly nested
//! (the *containment* property that Lemma 1 of the paper rests on), and the
//! ancestor test is a pair of integer comparisons.

/// A `(start, end)` position label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    pub start: u32,
    pub end: u32,
}

impl Interval {
    /// Creates an interval, checking `start <= end` in debug builds.
    #[inline]
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "interval start must not exceed end");
        Interval { start, end }
    }

    /// True iff `self` labels a proper ancestor of the node labeled `d`.
    ///
    /// This is the paper's test: the ancestor starts strictly earlier and
    /// ends no earlier.
    #[inline]
    pub fn is_ancestor_of(self, d: Interval) -> bool {
        self.start < d.start && self.end >= d.end
    }

    /// True iff the two intervals have no position in common.
    #[inline]
    pub fn disjoint(self, other: Interval) -> bool {
        self.end < other.start || other.end < self.start
    }

    /// True iff `self` comes entirely before `other` in document order
    /// (used by the ordered-semantics extension).
    #[inline]
    pub fn before(self, other: Interval) -> bool {
        self.end < other.start
    }

    /// Width of the interval in positions (a leaf has width 1).
    #[inline]
    pub fn width(self) -> u32 {
        self.end - self.start + 1
    }
}

/// Validates the containment property over a set of intervals: any two are
/// either disjoint or strictly nested. `O(n log n)`; intended for tests and
/// data-generator sanity checks.
pub fn check_containment(intervals: &[Interval]) -> bool {
    let mut sorted: Vec<Interval> = intervals.to_vec();
    sorted.sort();
    let mut stack: Vec<Interval> = Vec::new();
    for iv in sorted {
        while let Some(top) = stack.last() {
            if top.end < iv.start {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(top) = stack.last() {
            // Same start is fine only when one is a copy of the other
            // (predicates may list a node once), otherwise require nesting.
            if !(top.start < iv.start && top.end >= iv.end) && *top != iv {
                return false;
            }
        }
        stack.push(iv);
    }
    true
}

/// True when no interval in the set is nested inside another — the
/// *no-overlap* property of Definition 2 of the paper.
pub fn no_overlap(intervals: &[Interval]) -> bool {
    let mut sorted: Vec<Interval> = intervals.to_vec();
    sorted.sort();
    sorted.windows(2).all(|w| w[0].end < w[1].start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ancestor_test_matches_definition() {
        let root = Interval::new(0, 10);
        let mid = Interval::new(1, 5);
        let leaf = Interval::new(3, 3);
        assert!(root.is_ancestor_of(mid));
        assert!(root.is_ancestor_of(leaf));
        assert!(mid.is_ancestor_of(leaf));
        assert!(!leaf.is_ancestor_of(mid));
        assert!(!mid.is_ancestor_of(root));
        // A node is not its own ancestor.
        assert!(!mid.is_ancestor_of(mid));
    }

    #[test]
    fn disjoint_and_before() {
        let a = Interval::new(0, 3);
        let b = Interval::new(4, 9);
        assert!(a.disjoint(b));
        assert!(b.disjoint(a));
        assert!(a.before(b));
        assert!(!b.before(a));
        let c = Interval::new(2, 5);
        assert!(!a.disjoint(c));
    }

    #[test]
    fn width_of_leaf_is_one() {
        assert_eq!(Interval::new(7, 7).width(), 1);
        assert_eq!(Interval::new(2, 5).width(), 4);
    }

    #[test]
    fn containment_checker_accepts_tree_intervals() {
        // A valid nesting: root(0,6) { a(1,3){b(2,2), c(3,3)}, d(4,6){e(5,5), f(6,6)} }
        let ivs = [
            Interval::new(0, 6),
            Interval::new(1, 3),
            Interval::new(2, 2),
            Interval::new(3, 3),
            Interval::new(4, 6),
            Interval::new(5, 5),
            Interval::new(6, 6),
        ];
        assert!(check_containment(&ivs));
    }

    #[test]
    fn containment_checker_rejects_partial_overlap() {
        let ivs = [Interval::new(0, 5), Interval::new(3, 8)];
        assert!(!check_containment(&ivs));
    }

    #[test]
    fn no_overlap_detection() {
        let flat = [
            Interval::new(1, 3),
            Interval::new(5, 7),
            Interval::new(9, 9),
        ];
        assert!(no_overlap(&flat));
        let nested = [Interval::new(1, 6), Interval::new(2, 3)];
        assert!(!no_overlap(&nested));
    }
}
