//! Serializing trees back to XML text.
//!
//! Used by the data generators to materialize documents (so the parser is
//! exercised end-to-end) and by round-trip property tests.

use crate::tree::{NodeId, NodeKind, XmlTree};
use std::fmt::Write;

/// Serialization style.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOptions {
    /// Pretty-print with two-space indentation. Note that pretty-printed
    /// output re-parses to the same tree only when whitespace text nodes
    /// are dropped (the parser default).
    pub indent: bool,
}

/// Serializes the whole tree.
pub fn to_xml_string(tree: &XmlTree, opts: WriteOptions) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), opts, 0, &mut out);
    out
}

/// Serializes the subtree rooted at `node`.
pub fn subtree_to_xml_string(tree: &XmlTree, node: NodeId, opts: WriteOptions) -> String {
    let mut out = String::new();
    write_node(tree, node, opts, 0, &mut out);
    out
}

fn write_node(tree: &XmlTree, node: NodeId, opts: WriteOptions, depth: usize, out: &mut String) {
    match tree.kind(node) {
        NodeKind::Text => {
            indent(opts, depth, out);
            escape_text(tree.text(node).unwrap_or(""), out);
            newline(opts, out);
        }
        NodeKind::Element(_) => {
            let name = tree.tag_name(node).expect("element has a tag"); // xlint: allow(no-panic, "match arm guarantees an Element node, which always has a tag")
            indent(opts, depth, out);
            out.push('<');
            out.push_str(name);
            for attr in tree.attributes(node) {
                let _ = write!(out, " {}=\"", attr.name);
                escape_attr(&attr.value, out);
                out.push('"');
            }
            if tree.first_child(node).is_none() {
                out.push_str("/>");
                newline(opts, out);
                return;
            }
            out.push('>');
            // Text-only elements render inline even when pretty-printing,
            // so that indentation never alters character data.
            let text_only = tree.children(node).all(|c| tree.kind(c) == NodeKind::Text);
            if text_only {
                for child in tree.children(node) {
                    escape_text(tree.text(child).unwrap_or(""), out);
                }
            } else {
                newline(opts, out);
                for child in tree.children(node) {
                    write_node(tree, child, opts, depth + 1, out);
                }
                indent(opts, depth, out);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
            newline(opts, out);
        }
    }
}

fn indent(opts: WriteOptions, depth: usize, out: &mut String) {
    if opts.indent {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn newline(opts: WriteOptions, out: &mut String) {
    if opts.indent {
        out.push('\n');
    }
}

fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            other => out.push(other),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_str;
    use crate::tree::TreeBuilder;

    #[test]
    fn compact_round_trip() {
        let doc = "<a x=\"1\"><b>hi &amp; bye</b><c/></a>";
        let tree = parse_str(doc).unwrap();
        let out = to_xml_string(&tree, WriteOptions::default());
        assert_eq!(out, doc);
        // Second round trip is a fixed point.
        let tree2 = parse_str(&out).unwrap();
        assert_eq!(to_xml_string(&tree2, WriteOptions::default()), out);
    }

    #[test]
    fn pretty_output_reparses_to_same_shape() {
        let doc = "<a><b>text</b><c><d/></c></a>";
        let tree = parse_str(doc).unwrap();
        let pretty = to_xml_string(&tree, WriteOptions { indent: true });
        assert!(pretty.contains("\n"));
        let reparsed = parse_str(&pretty).unwrap();
        assert_eq!(reparsed.len(), tree.len());
        assert_eq!(to_xml_string(&reparsed, WriteOptions::default()), doc);
    }

    #[test]
    fn escaping_special_characters() {
        let mut b = TreeBuilder::new();
        b.open("a");
        b.attr("k", "x\"<>&").unwrap();
        b.text("1 < 2 & 3 > 2");
        b.close().unwrap();
        let tree = b.finish().unwrap();
        let out = to_xml_string(&tree, WriteOptions::default());
        assert_eq!(
            out,
            "<a k=\"x&quot;&lt;&gt;&amp;\">1 &lt; 2 &amp; 3 &gt; 2</a>"
        );
        let back = parse_str(&out).unwrap();
        assert_eq!(back.direct_text(back.root()), "1 < 2 & 3 > 2");
    }

    #[test]
    fn subtree_serialization() {
        let tree = parse_str("<a><b><c/></b><d/></a>").unwrap();
        let b = tree.children(tree.root()).next().unwrap();
        assert_eq!(
            subtree_to_xml_string(&tree, b, WriteOptions::default()),
            "<b><c/></b>"
        );
    }
}
