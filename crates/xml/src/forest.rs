//! The "mega-tree": merging a document collection into one labeled tree.
//!
//! Section 3.1 of the paper: *"we merge all documents in the database
//! into a single mega-tree with a dummy element as the root, and each
//! document as a child subtree. We number nodes in this tree to obtain
//! the desired labels."* A single numbering space means one grid and one
//! histogram set covers the whole database, and cross-document position
//! comparisons are trivially impossible (their intervals are disjoint).
//!
//! [`Forest`] wraps the merged tree and remembers each document's root
//! and name, so per-document views remain available.

use crate::error::Result;
use crate::parser::{parse_into, ParseOptions};
use crate::tree::{NodeId, TreeBuilder, XmlTree};

/// Tag used for the synthetic root of the mega-tree. The leading `#`
/// cannot appear in a parsed element name, so it never collides.
pub const MEGA_ROOT_TAG: &str = "#root";

/// One document registered in the forest.
#[derive(Debug, Clone)]
pub struct DocumentInfo {
    /// Caller-supplied name (file name, URI, ...).
    pub name: String,
    /// Root element of this document inside the mega-tree.
    pub root: NodeId,
}

/// A document collection merged into a single interval-labeled tree.
#[derive(Debug)]
pub struct Forest {
    tree: XmlTree,
    documents: Vec<DocumentInfo>,
}

/// Incremental forest builder.
#[derive(Debug)]
pub struct ForestBuilder {
    builder: TreeBuilder,
    names: Vec<String>,
    roots: Vec<NodeId>,
    opts: ParseOptions,
}

impl Default for ForestBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ForestBuilder {
    pub fn new() -> Self {
        Self::with_options(ParseOptions::default())
    }

    pub fn with_options(opts: ParseOptions) -> Self {
        let mut builder = TreeBuilder::new();
        builder.open(MEGA_ROOT_TAG);
        ForestBuilder {
            builder,
            names: Vec::new(),
            roots: Vec::new(),
            opts,
        }
    }

    /// Parses `xml` and appends it as the next document subtree.
    pub fn add_document(&mut self, name: impl Into<String>, xml: &str) -> Result<()> {
        let root = NodeId(self.builder.len() as u32);
        parse_into(&mut self.builder, xml, self.opts)?;
        self.names.push(name.into());
        self.roots.push(root);
        Ok(())
    }

    /// Appends an already-built tree as the next document subtree by
    /// replaying it into the mega-tree builder.
    pub fn add_tree(&mut self, name: impl Into<String>, tree: &XmlTree) -> Result<()> {
        let root = NodeId(self.builder.len() as u32);
        self.replay(tree, tree.root())?;
        self.names.push(name.into());
        self.roots.push(root);
        Ok(())
    }

    fn replay(&mut self, tree: &XmlTree, node: NodeId) -> Result<()> {
        match tree.kind(node) {
            crate::tree::NodeKind::Text => {
                self.builder.text(tree.text(node).unwrap_or(""));
            }
            crate::tree::NodeKind::Element(_) => {
                self.builder
                    .open(tree.tag_name(node).expect("element has a tag")); // xlint: allow(no-panic, "match arm guarantees an Element node, which always has a tag")
                for attr in tree.attributes(node) {
                    self.builder.attr(&attr.name, &attr.value)?;
                }
                for child in tree.children(node) {
                    self.replay(tree, child)?;
                }
                self.builder.close()?;
            }
        }
        Ok(())
    }

    /// Number of documents added so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no document has been added.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Finalizes the mega-tree.
    pub fn finish(mut self) -> Result<Forest> {
        self.builder.close()?;
        let tree = self.builder.finish()?;
        let documents = self
            .names
            .into_iter()
            .zip(self.roots)
            .map(|(name, root)| DocumentInfo { name, root })
            .collect();
        Ok(Forest { tree, documents })
    }
}

impl Forest {
    /// The merged, labeled mega-tree (root tag [`MEGA_ROOT_TAG`]).
    pub fn tree(&self) -> &XmlTree {
        &self.tree
    }

    /// Consumes the forest, returning the mega-tree.
    pub fn into_tree(self) -> XmlTree {
        self.tree
    }

    /// Registered documents in insertion order.
    pub fn documents(&self) -> &[DocumentInfo] {
        &self.documents
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the forest holds no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// The document a node belongs to, if any (the mega-root belongs to
    /// none). Binary search over document root positions.
    pub fn document_of(&self, node: NodeId) -> Option<&DocumentInfo> {
        if node.0 == 0 {
            return None;
        }
        let idx = self.documents.partition_point(|d| d.root <= node);
        let doc = &self.documents[idx.checked_sub(1)?];
        self.tree
            .interval(doc.root)
            .is_ancestor_of(self.tree.interval(node))
            .then_some(doc)
            .or((doc.root == node).then_some(doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_documents_and_number_continuously() {
        let mut fb = ForestBuilder::new();
        fb.add_document("a.xml", "<a><x/><x/></a>").unwrap();
        fb.add_document("b.xml", "<b><y/></b>").unwrap();
        let forest = fb.finish().unwrap();
        let t = forest.tree();
        // #root + (a, x, x) + (b, y) = 6 nodes.
        assert_eq!(t.len(), 6);
        assert_eq!(t.tag_name(t.root()), Some(MEGA_ROOT_TAG));
        assert_eq!(forest.len(), 2);
        assert_eq!(forest.documents()[0].root, NodeId(1));
        assert_eq!(forest.documents()[1].root, NodeId(4));
        // Intervals of the two documents are disjoint.
        let iv_a = t.interval(NodeId(1));
        let iv_b = t.interval(NodeId(4));
        assert!(iv_a.disjoint(iv_b));
        // And both nested in the mega-root.
        assert!(t.interval(t.root()).is_ancestor_of(iv_a));
        assert!(t.interval(t.root()).is_ancestor_of(iv_b));
    }

    #[test]
    fn document_of_resolves_membership() {
        let mut fb = ForestBuilder::new();
        fb.add_document("a", "<a><x/></a>").unwrap();
        fb.add_document("b", "<b><y><z/></y></b>").unwrap();
        let forest = fb.finish().unwrap();
        assert!(forest.document_of(NodeId(0)).is_none(), "mega-root");
        assert_eq!(forest.document_of(NodeId(1)).unwrap().name, "a");
        assert_eq!(forest.document_of(NodeId(2)).unwrap().name, "a");
        assert_eq!(forest.document_of(NodeId(3)).unwrap().name, "b");
        assert_eq!(forest.document_of(NodeId(5)).unwrap().name, "b");
    }

    #[test]
    fn add_tree_replays_structure_attributes_and_text() {
        let src = crate::parser::parse_str("<d k=\"v\"><e>hi</e></d>").unwrap();
        let mut fb = ForestBuilder::new();
        fb.add_tree("doc", &src).unwrap();
        fb.add_document("other", "<f/>").unwrap();
        let forest = fb.finish().unwrap();
        let t = forest.tree();
        assert_eq!(t.len(), 1 + 3 + 1);
        let d = NodeId(1);
        assert_eq!(t.tag_name(d), Some("d"));
        assert_eq!(t.attributes(d).len(), 1);
        assert_eq!(t.attributes(d)[0].value, "v");
        assert_eq!(t.text_content(d), "hi");
    }

    #[test]
    fn cross_document_ancestry_is_impossible() {
        let mut fb = ForestBuilder::new();
        fb.add_document("a", "<a><x/></a>").unwrap();
        fb.add_document("b", "<a><x/></a>").unwrap();
        let forest = fb.finish().unwrap();
        let t = forest.tree();
        // The first document's <a> is not an ancestor of the second's <x>.
        assert!(!t.is_ancestor(NodeId(1), NodeId(4)));
        assert!(!t.is_ancestor(NodeId(1), NodeId(3)));
    }

    #[test]
    fn empty_and_builder_misuse() {
        let forest = ForestBuilder::new().finish().unwrap();
        assert!(forest.is_empty());
        assert_eq!(forest.tree().len(), 1, "just the mega-root");

        let mut fb = ForestBuilder::new();
        assert!(fb.add_document("bad", "<unclosed>").is_err());
    }
}
