//! XML substrate for the `xmlest` workspace.
//!
//! This crate provides everything the estimation layer needs from the
//! document side, built from scratch:
//!
//! * an arena-based node-labeled tree ([`XmlTree`]) built in document order,
//! * a streaming XML parser ([`parser`]) with entity handling,
//! * a DTD parser and structural analysis ([`dtd`]) used both for data
//!   generation and for the schema shortcuts of Section 4 of the paper,
//! * interval ("start/end position") labeling ([`label`]) as defined in
//!   Section 3.1 of *Estimating Answer Sizes for XML Queries* (EDBT 2002),
//! * a serializer and tree statistics.
//!
//! The labeling scheme is the load-bearing piece: every node receives a
//! `(start, end)` pair such that a node `u` is an ancestor of `v` iff
//! `u.start < v.start && u.end >= v.end`. Position histograms in
//! `xmlest-core` are built over exactly these pairs.

pub mod dtd;
pub mod error;
pub mod forest;
pub mod label;
pub mod parser;
pub mod serialize;
pub mod stats;
pub mod tag;
pub mod tree;

pub use error::{Error, Result};
pub use forest::{Forest, ForestBuilder, MEGA_ROOT_TAG};
pub use label::Interval;
pub use tag::{TagId, TagInterner};
pub use tree::{NodeId, NodeKind, TreeBuilder, XmlTree};
