//! A from-scratch, non-validating XML parser.
//!
//! Supports the XML subset needed by the paper's workloads (and a bit
//! more): elements, attributes, character data, CDATA sections, comments,
//! processing instructions, numeric and predefined entities, an XML
//! declaration, and a `<!DOCTYPE>` whose *internal subset* is captured
//! verbatim so [`crate::dtd`] can analyze it.
//!
//! Two entry points:
//! * [`parse_str`] — one document, one tree;
//! * [`parse_into`] — appends a document's root under the currently open
//!   element of an existing [`TreeBuilder`], which is how several documents
//!   are merged into the paper's single "mega-tree" with a dummy root.

use crate::error::{Error, Result};
use crate::tree::{TreeBuilder, XmlTree};

/// Parser configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParseOptions {
    /// Keep text nodes consisting solely of whitespace. Off by default:
    /// indentation between elements should not produce nodes (it would
    /// distort node counts and position histograms).
    pub keep_whitespace_text: bool,
}

/// Result of [`parse_document`]: the tree plus the raw internal DTD subset
/// (the text between `[` and `]` of the DOCTYPE), if any.
#[derive(Debug)]
pub struct Parsed {
    pub tree: XmlTree,
    pub internal_dtd: Option<String>,
}

/// Parses a complete document into a fresh tree.
pub fn parse_str(input: &str) -> Result<XmlTree> {
    Ok(parse_document(input, ParseOptions::default())?.tree)
}

/// Parses a complete document, also returning the internal DTD subset.
pub fn parse_document(input: &str, opts: ParseOptions) -> Result<Parsed> {
    let mut b = TreeBuilder::new();
    let internal_dtd = Cursor::new(input, opts).run(&mut b)?;
    Ok(Parsed {
        tree: b.finish()?,
        internal_dtd,
    })
}

/// Parses a document and appends its root element as a child of the
/// currently open element of `builder`. Returns the internal DTD subset.
pub fn parse_into(
    builder: &mut TreeBuilder,
    input: &str,
    opts: ParseOptions,
) -> Result<Option<String>> {
    let depth_before = builder.open_depth();
    let dtd = Cursor::new(input, opts).run(builder)?;
    debug_assert_eq!(builder.open_depth(), depth_before);
    Ok(dtd)
}

struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
    opts: ParseOptions,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str, opts: ParseOptions) -> Self {
        let mut pos = 0;
        // Skip a UTF-8 BOM if present.
        if input.as_bytes().starts_with(&[0xEF, 0xBB, 0xBF]) {
            pos = 3;
        }
        Cursor {
            input: input.as_bytes(),
            pos,
            opts,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(Error::parse(msg, self.pos))
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    #[inline]
    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.eat(s) {
            Ok(())
        } else {
            self.err(format!("expected {s:?}"))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Main loop. Returns the internal DTD subset if a DOCTYPE carried one.
    fn run(mut self, b: &mut TreeBuilder) -> Result<Option<String>> {
        let mut internal_dtd = None;
        let base_depth = b.open_depth();
        let mut roots_seen = 0usize;
        let mut text = String::new();
        // Names of open elements, for end-tag validation.
        let mut open_names: Vec<String> = Vec::new();

        loop {
            match self.peek() {
                None => break,
                Some(b'<') => {
                    let after = self.pos + 1;
                    match self.input.get(after).copied() {
                        // Comments and PIs do not break up character data.
                        Some(b'?') => self.skip_pi()?,
                        Some(b'!') => {
                            if self.input[after..].starts_with(b"!--") {
                                self.skip_comment()?;
                            } else if self.input[after..].starts_with(b"![CDATA[") {
                                let cd = self.read_cdata()?;
                                if b.open_depth() == base_depth {
                                    return self.err("character data outside root element");
                                }
                                text.push_str(cd);
                            } else if self.input[after..].starts_with(b"!DOCTYPE") {
                                self.flush_text(b, &mut text, base_depth, roots_seen)?;
                                if b.open_depth() > base_depth || roots_seen > 0 {
                                    return self.err("DOCTYPE inside content");
                                }
                                internal_dtd = self.read_doctype()?;
                            } else {
                                return self.err("unrecognized markup after '<!'");
                            }
                        }
                        Some(b'/') => {
                            self.flush_text(b, &mut text, base_depth, roots_seen)?;
                            self.pos = after + 1;
                            let name = self.read_name()?;
                            self.skip_ws();
                            self.expect(">")?;
                            match open_names.pop() {
                                None => {
                                    return self.err(format!("unmatched end tag </{name}>"));
                                }
                                Some(open) if open != name => {
                                    return self.err(format!(
                                        "end tag </{name}> does not match open <{open}>"
                                    ));
                                }
                                Some(_) => {}
                            }
                            b.close()
                                .map_err(|e| Error::parse(e.to_string(), self.pos))?;
                        }
                        _ => {
                            // Start tag.
                            self.flush_text(b, &mut text, base_depth, roots_seen)?;
                            self.pos = after;
                            if b.open_depth() == base_depth {
                                roots_seen += 1;
                                if roots_seen > 1 {
                                    return self.err("more than one root element");
                                }
                            }
                            if let Some(name) = self.read_start_tag(b)? {
                                open_names.push(name);
                            }
                        }
                    }
                }
                Some(_) => {
                    let chunk = self.read_text()?;
                    text.push_str(&chunk);
                }
            }
        }
        self.flush_text(b, &mut text, base_depth, roots_seen)?;
        if b.open_depth() > base_depth {
            return self.err("unclosed element at end of input");
        }
        if roots_seen == 0 {
            return self.err("no root element");
        }
        Ok(internal_dtd)
    }

    fn flush_text(
        &self,
        b: &mut TreeBuilder,
        text: &mut String,
        base_depth: usize,
        roots_seen: usize,
    ) -> Result<()> {
        if text.is_empty() {
            return Ok(());
        }
        let only_ws = text.chars().all(|c| c.is_ascii_whitespace());
        if b.open_depth() == base_depth {
            // Outside the root element only whitespace is allowed.
            if !only_ws {
                return self.err(if roots_seen == 0 {
                    "character data before root element"
                } else {
                    "character data after root element"
                });
            }
        } else if !only_ws || self.opts.keep_whitespace_text {
            b.text(text);
        }
        text.clear();
        Ok(())
    }

    /// Parses a start tag. Returns the element name when the element was
    /// left open (i.e. not a self-closing `<name/>`).
    fn read_start_tag(&mut self, b: &mut TreeBuilder) -> Result<Option<String>> {
        let name = self.read_name()?;
        b.open(&name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(Some(name));
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(">")?;
                    b.close()
                        .map_err(|e| Error::parse(e.to_string(), self.pos))?;
                    return Ok(None);
                }
                Some(_) => {
                    let aname = self.read_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.read_quoted()?;
                    b.attr(&aname, &value)
                        .map_err(|e| Error::parse(e.to_string(), self.pos))?;
                }
                None => return self.err("unterminated start tag"),
            }
        }
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.pos += 1;
            }
            _ => return self.err("expected a name"),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.pos += 1;
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| Error::parse("invalid UTF-8 in name", start))?
            .to_owned())
    }

    fn read_quoted(&mut self) -> Result<String> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected quoted value"),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated attribute value"),
                Some(c) if c == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'&') => {
                    let e = self.read_entity()?;
                    out.push_str(&e);
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote || c == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| Error::parse("invalid UTF-8", start))?,
                    );
                }
            }
        }
    }

    fn read_text(&mut self) -> Result<String> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'<') => return Ok(out),
                Some(b'&') => {
                    let e = self.read_entity()?;
                    out.push_str(&e);
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' || c == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| Error::parse("invalid UTF-8 in text", start))?,
                    );
                }
            }
        }
    }

    fn read_entity(&mut self) -> Result<String> {
        let start = self.pos;
        self.expect("&")?;
        if self.eat("#") {
            let hex = self.eat("x");
            let dstart = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            let digits = std::str::from_utf8(&self.input[dstart..self.pos]).unwrap(); // xlint: allow(no-panic, "every byte in the range passed is_ascii_hexdigit; ASCII is valid UTF-8")
            self.expect(";")?;
            let code = u32::from_str_radix(digits, if hex { 16 } else { 10 })
                .map_err(|_| Error::parse("bad character reference", start))?;
            let ch = char::from_u32(code)
                .ok_or_else(|| Error::parse("invalid character reference", start))?;
            return Ok(ch.to_string());
        }
        let name = self.read_name()?;
        self.expect(";")?;
        let decoded = match name.as_str() {
            "lt" => "<",
            "gt" => ">",
            "amp" => "&",
            "apos" => "'",
            "quot" => "\"",
            other => {
                return Err(Error::parse(format!("unknown entity &{other};"), start));
            }
        };
        Ok(decoded.to_owned())
    }

    fn skip_pi(&mut self) -> Result<()> {
        self.expect("<?")?;
        match find(self.input, self.pos, b"?>") {
            Some(end) => {
                self.pos = end + 2;
                Ok(())
            }
            None => self.err("unterminated processing instruction"),
        }
    }

    fn skip_comment(&mut self) -> Result<()> {
        self.expect("<!--")?;
        match find(self.input, self.pos, b"-->") {
            Some(end) => {
                self.pos = end + 3;
                Ok(())
            }
            None => self.err("unterminated comment"),
        }
    }

    fn read_cdata(&mut self) -> Result<&'a str> {
        self.expect("<![CDATA[")?;
        match find(self.input, self.pos, b"]]>") {
            Some(end) => {
                let s = std::str::from_utf8(&self.input[self.pos..end])
                    .map_err(|_| Error::parse("invalid UTF-8 in CDATA", self.pos))?;
                self.pos = end + 3;
                Ok(s)
            }
            None => self.err("unterminated CDATA section"),
        }
    }

    /// Reads `<!DOCTYPE name [internal subset]? >`, returning the internal
    /// subset text if present.
    fn read_doctype(&mut self) -> Result<Option<String>> {
        self.expect("<!DOCTYPE")?;
        let mut subset = None;
        let mut depth = 0usize;
        loop {
            match self.bump() {
                None => return self.err("unterminated DOCTYPE"),
                Some(b'[') => {
                    let start = self.pos;
                    depth += 1;
                    // Internal subsets do not nest '[' in our supported
                    // grammar, but tolerate it.
                    while depth > 0 {
                        match self.bump() {
                            None => return self.err("unterminated DOCTYPE subset"),
                            Some(b'[') => depth += 1,
                            Some(b']') => depth -= 1,
                            Some(_) => {}
                        }
                    }
                    let text = std::str::from_utf8(&self.input[start..self.pos - 1])
                        .map_err(|_| Error::parse("invalid UTF-8 in DTD", start))?;
                    subset = Some(text.to_owned());
                }
                Some(b'>') => return Ok(subset),
                Some(_) => {}
            }
        }
    }
}

#[inline]
fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b':' || c >= 0x80
}

#[inline]
fn is_name_char(c: u8) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == b'-' || c == b'.'
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;

    #[test]
    fn parses_simple_document() {
        let t = parse_str("<a><b>hi</b><c/></a>").unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.tag_name(t.root()), Some("a"));
        let kids: Vec<_> = t.children(t.root()).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(t.tag_name(kids[0]), Some("b"));
        assert_eq!(t.direct_text(kids[0]), "hi");
        assert_eq!(t.tag_name(kids[1]), Some("c"));
    }

    #[test]
    fn whitespace_between_elements_is_dropped_by_default() {
        let t = parse_str("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(t.len(), 3);
        let kept = parse_document(
            "<a>\n  <b/>\n</a>",
            ParseOptions {
                keep_whitespace_text: true,
            },
        )
        .unwrap()
        .tree;
        assert_eq!(kept.len(), 4); // a, "\n  ", b, "\n"
    }

    #[test]
    fn entities_are_decoded() {
        let t =
            parse_str("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos; &#65;&#x42;</a>").unwrap();
        assert_eq!(t.direct_text(t.root()), "<x> & \"y\" 'z' AB");
    }

    #[test]
    fn unknown_entity_is_an_error() {
        let err = parse_str("<a>&nope;</a>").unwrap_err();
        assert!(err.to_string().contains("unknown entity"));
    }

    #[test]
    fn attributes_parsed_with_both_quote_styles() {
        let t = parse_str(r#"<a x="1" y='two &amp; three'/>"#).unwrap();
        let attrs = t.attributes(t.root());
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].name, "x");
        assert_eq!(attrs[0].value, "1");
        assert_eq!(attrs[1].value, "two & three");
    }

    #[test]
    fn cdata_becomes_text() {
        let t = parse_str("<a><![CDATA[<not> &markup;]]></a>").unwrap();
        assert_eq!(t.direct_text(t.root()), "<not> &markup;");
    }

    #[test]
    fn comments_and_pis_are_skipped() {
        let t = parse_str("<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><?pi data?><b/></a>")
            .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn doctype_internal_subset_is_captured() {
        let doc = "<!DOCTYPE a [<!ELEMENT a (b*)><!ELEMENT b EMPTY>]><a><b/></a>";
        let parsed = parse_document(doc, ParseOptions::default()).unwrap();
        let dtd = parsed.internal_dtd.unwrap();
        assert!(dtd.contains("<!ELEMENT a (b*)>"));
        assert_eq!(parsed.tree.len(), 2);
    }

    #[test]
    fn doctype_without_subset() {
        let parsed =
            parse_document("<!DOCTYPE a SYSTEM \"a.dtd\"><a/>", ParseOptions::default()).unwrap();
        assert!(parsed.internal_dtd.is_none());
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse_str("<a><b></a></b>").is_err());
        assert!(parse_str("<a>").is_err());
        assert!(parse_str("</a>").is_err());
        assert!(parse_str("<a/><b/>").is_err());
        assert!(parse_str("x<a/>").is_err());
        assert!(parse_str("<a/>x").is_err());
        assert!(parse_str("").is_err());
    }

    #[test]
    fn text_coalesces_around_comments() {
        let t = parse_str("<a>one<!-- c -->two</a>").unwrap();
        // Two text nodes would also be acceptable semantically; we coalesce.
        let texts: Vec<_> = t
            .iter()
            .filter(|&n| t.kind(n) == NodeKind::Text)
            .map(|n| t.text(n).unwrap().to_owned())
            .collect();
        assert_eq!(texts, vec!["onetwo".to_owned()]);
    }

    #[test]
    fn parse_into_builds_mega_tree() {
        let mut b = TreeBuilder::new();
        b.open("#root");
        parse_into(&mut b, "<doc1><x/></doc1>", ParseOptions::default()).unwrap();
        parse_into(&mut b, "<doc2/>", ParseOptions::default()).unwrap();
        b.close().unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.len(), 4);
        let kids: Vec<_> = t
            .children(t.root())
            .map(|c| t.tag_name(c).unwrap().to_owned())
            .collect();
        assert_eq!(kids, vec!["doc1".to_owned(), "doc2".to_owned()]);
    }

    #[test]
    fn bom_is_skipped() {
        let doc = "\u{FEFF}<a/>";
        assert!(parse_str(doc).is_ok());
    }

    #[test]
    fn deeply_nested_document() {
        let mut doc = String::new();
        for _ in 0..2000 {
            doc.push_str("<d>");
        }
        for _ in 0..2000 {
            doc.push_str("</d>");
        }
        let t = parse_str(&doc).unwrap();
        assert_eq!(t.len(), 2000);
        assert_eq!(t.depth(crate::tree::NodeId(1999)), 1999);
    }
}
