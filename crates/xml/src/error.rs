//! Error type shared by the XML substrate.

use std::fmt;

/// Errors produced while parsing documents or DTDs, or while building trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Malformed XML input. Carries a human-readable message and the byte
    /// offset at which the problem was detected.
    Parse { msg: String, offset: usize },
    /// Malformed DTD input.
    Dtd { msg: String, offset: usize },
    /// Tree construction misuse (e.g. closing more elements than were
    /// opened, or finishing with unclosed elements).
    Builder(String),
}

impl Error {
    pub(crate) fn parse(msg: impl Into<String>, offset: usize) -> Self {
        Error::Parse {
            msg: msg.into(),
            offset,
        }
    }

    pub(crate) fn dtd(msg: impl Into<String>, offset: usize) -> Self {
        Error::Dtd {
            msg: msg.into(),
            offset,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { msg, offset } => {
                write!(f, "XML parse error at byte {offset}: {msg}")
            }
            Error::Dtd { msg, offset } => {
                write!(f, "DTD parse error at byte {offset}: {msg}")
            }
            Error::Builder(msg) => write!(f, "tree builder error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = Error::parse("unexpected '<'", 42);
        assert_eq!(e.to_string(), "XML parse error at byte 42: unexpected '<'");
        let e = Error::dtd("bad content model", 7);
        assert_eq!(
            e.to_string(),
            "DTD parse error at byte 7: bad content model"
        );
        let e = Error::Builder("unclosed element".into());
        assert_eq!(e.to_string(), "tree builder error: unclosed element");
    }
}
