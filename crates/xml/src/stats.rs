//! Descriptive statistics over a tree.
//!
//! Used by the experiment harness to print "data set characteristics"
//! tables (the node counts of Tables 1 and 3 of the paper) and by the
//! data generators to verify that produced documents have the intended
//! shape (deep recursion for the synthetic DTD, flat records for DBLP).

use crate::label::no_overlap;
use crate::tag::TagId;
use crate::tree::{NodeKind, XmlTree};
use std::collections::BTreeMap;

/// Summary statistics of a tree.
#[derive(Debug, Clone)]
pub struct TreeStats {
    /// Total node count (elements + text nodes).
    pub node_count: usize,
    /// Element count.
    pub element_count: usize,
    /// Text node count.
    pub text_count: usize,
    /// Deepest node depth (root = 0).
    pub max_depth: u32,
    /// Mean depth over all nodes.
    pub avg_depth: f64,
    /// Per-tag element counts, keyed by tag name (deterministic order).
    pub tag_counts: BTreeMap<String, usize>,
    /// Largest number of children on any node.
    pub max_fanout: usize,
}

impl TreeStats {
    /// Computes statistics in a single pass.
    pub fn compute(tree: &XmlTree) -> Self {
        let mut element_count = 0;
        let mut text_count = 0;
        let mut max_depth = 0;
        let mut depth_sum = 0u64;
        let mut tag_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut child_counts: Vec<usize> = vec![0; tree.len()];

        for id in tree.iter() {
            let d = tree.depth(id);
            max_depth = max_depth.max(d);
            depth_sum += u64::from(d);
            match tree.kind(id) {
                NodeKind::Element(tag) => {
                    element_count += 1;
                    *tag_counts
                        .entry(tree.tags().name(tag).to_owned())
                        .or_default() += 1;
                }
                NodeKind::Text => text_count += 1,
            }
            if let Some(p) = tree.parent(id) {
                child_counts[p.index()] += 1;
            }
        }

        TreeStats {
            node_count: tree.len(),
            element_count,
            text_count,
            max_depth,
            avg_depth: if tree.is_empty() {
                0.0
            } else {
                depth_sum as f64 / tree.len() as f64
            },
            tag_counts,
            max_fanout: child_counts.into_iter().max().unwrap_or(0),
        }
    }
}

/// Count of nodes with a specific tag.
pub fn tag_count(tree: &XmlTree, tag: TagId) -> usize {
    tree.iter().filter(|&n| tree.tag(n) == Some(tag)).count()
}

/// Checks the *no-overlap* property (Definition 2) for a tag directly
/// against the data: do any two nodes with this tag nest?
pub fn tag_has_no_overlap(tree: &XmlTree, tag: TagId) -> bool {
    let intervals = tree.intervals_where(|n| tree.tag(n) == Some(tag));
    no_overlap(&intervals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_str;

    fn sample() -> XmlTree {
        parse_str("<a><b>t1</b><b><c/><c/></b><d>t2</d></a>").unwrap()
    }

    #[test]
    fn counts_and_depths() {
        let t = sample();
        let s = TreeStats::compute(&t);
        assert_eq!(s.node_count, 8);
        assert_eq!(s.element_count, 6);
        assert_eq!(s.text_count, 2);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.tag_counts["a"], 1);
        assert_eq!(s.tag_counts["b"], 2);
        assert_eq!(s.tag_counts["c"], 2);
        assert_eq!(s.max_fanout, 3);
        assert!(s.avg_depth > 0.0 && s.avg_depth < 2.0);
    }

    #[test]
    fn no_overlap_detected_from_data() {
        let t = parse_str("<a><b><b/></b><c/><c/></a>").unwrap();
        let b = t.tags().get("b").unwrap();
        let c = t.tags().get("c").unwrap();
        assert!(!tag_has_no_overlap(&t, b), "b nests");
        assert!(tag_has_no_overlap(&t, c), "c does not nest");
    }

    #[test]
    fn tag_count_matches_stats() {
        let t = sample();
        let b = t.tags().get("b").unwrap();
        assert_eq!(tag_count(&t, b), 2);
    }
}
