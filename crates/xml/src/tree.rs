//! Arena-based node-labeled tree in document order.
//!
//! Nodes are stored in a flat `Vec` in pre-order (document) position, which
//! means a [`NodeId`] doubles as the node's *start* label: the interval
//! labeling of Section 3.1 of the paper falls out of the representation for
//! free (see [`crate::label`]). The subtree of a node occupies a contiguous
//! index range `[id, subtree_end]`, so descendant iteration, subtree counts
//! and range-based prefix sums (used by the exact matcher in
//! `xmlest-query`) are all O(1)/O(k) with no pointer chasing.

use crate::error::{Error, Result};
use crate::label::Interval;
use crate::tag::{TagId, TagInterner};

/// Sentinel for "no node".
const NIL: u32 = u32::MAX;

/// Identifier of a node; equals the node's pre-order (document) position,
/// and therefore also its *start* label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the tree's node arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node is: an element with an interned tag, or a text node whose
/// content lives in the tree's text table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    Element(TagId),
    Text,
}

#[derive(Debug, Clone)]
struct NodeRaw {
    parent: u32,
    next_sibling: u32,
    /// Index of the last node in this node's subtree (== own index for a
    /// leaf). This is exactly the *end* label of the paper's numbering.
    subtree_end: u32,
    /// Tag id for elements; `NIL` for text nodes.
    tag: u32,
    /// Index into `texts` for text nodes; `NIL` for elements.
    text: u32,
    /// Root has depth 0.
    depth: u32,
}

/// An attribute attached to an element node. Attributes do not receive
/// interval labels (the paper's predicates are over elements and text), but
/// they are preserved for round-tripping and future predicate kinds.
#[derive(Debug, Clone)]
pub struct Attr {
    pub node: NodeId,
    pub name: String,
    pub value: String,
}

/// An immutable node-labeled tree with document-order storage.
#[derive(Debug, Clone)]
pub struct XmlTree {
    nodes: Vec<NodeRaw>,
    texts: Vec<String>,
    tags: TagInterner,
    /// Attributes sorted by owning node id (builder appends in order).
    attrs: Vec<Attr>,
}

impl XmlTree {
    /// Number of nodes (elements + text nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes. A finished builder never produces
    /// an empty tree, but a deserialized value might.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node (always id 0).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Tag interner for this tree.
    pub fn tags(&self) -> &TagInterner {
        &self.tags
    }

    /// The kind of `id`.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        let n = &self.nodes[id.index()];
        if n.tag == NIL {
            NodeKind::Text
        } else {
            NodeKind::Element(TagId(n.tag))
        }
    }

    /// Tag of `id` if it is an element.
    pub fn tag(&self, id: NodeId) -> Option<TagId> {
        let t = self.nodes[id.index()].tag;
        (t != NIL).then_some(TagId(t))
    }

    /// Tag name of `id` if it is an element.
    pub fn tag_name(&self, id: NodeId) -> Option<&str> {
        self.tag(id).map(|t| self.tags.name(t))
    }

    /// Text content of `id` if it is a text node.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        let t = self.nodes[id.index()].text;
        (t != NIL).then(|| self.texts[t as usize].as_str())
    }

    /// Parent of `id`, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let p = self.nodes[id.index()].parent;
        (p != NIL).then_some(NodeId(p))
    }

    /// First child in document order, if any.
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        let n = &self.nodes[id.index()];
        (n.subtree_end > id.0).then_some(NodeId(id.0 + 1))
    }

    /// Next sibling in document order, if any.
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        let s = self.nodes[id.index()].next_sibling;
        (s != NIL).then_some(NodeId(s))
    }

    /// Iterates the direct children of `id` in document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            tree: self,
            next: self.first_child(id),
        }
    }

    /// Depth of `id` (root = 0).
    pub fn depth(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].depth
    }

    /// The `(start, end)` interval label of `id` (Section 3.1): `start` is
    /// the pre-order position, `end` the largest start in the subtree.
    pub fn interval(&self, id: NodeId) -> Interval {
        Interval {
            start: id.0,
            end: self.nodes[id.index()].subtree_end,
        }
    }

    /// The largest position value in the tree (the paper's `Max(X)`);
    /// equals `len() - 1`.
    pub fn max_pos(&self) -> u32 {
        (self.nodes.len().saturating_sub(1)) as u32
    }

    /// True iff `a` is a proper ancestor of `d` (never true for `a == d`).
    pub fn is_ancestor(&self, a: NodeId, d: NodeId) -> bool {
        self.interval(a).is_ancestor_of(self.interval(d))
    }

    /// Iterates all node ids in document order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates the proper descendants of `id` in document order.
    pub fn descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let end = self.nodes[id.index()].subtree_end;
        (id.0 + 1..=end).filter(move |_| end > id.0).map(NodeId)
    }

    /// Number of proper descendants of `id`.
    pub fn descendant_count(&self, id: NodeId) -> usize {
        (self.nodes[id.index()].subtree_end - id.0) as usize
    }

    /// Concatenated content of the *direct* text children of an element;
    /// for a text node, its own content. Used by content predicates.
    pub fn direct_text(&self, id: NodeId) -> String {
        if let Some(t) = self.text(id) {
            return t.to_owned();
        }
        let mut out = String::new();
        for c in self.children(id) {
            if let Some(t) = self.text(c) {
                out.push_str(t);
            }
        }
        out
    }

    /// Concatenated text of the whole subtree, in document order.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        if let Some(t) = self.text(id) {
            out.push_str(t);
        }
        for d in self.descendants(id) {
            if let Some(t) = self.text(d) {
                out.push_str(t);
            }
        }
        out
    }

    /// Attributes of `id` (empty slice for text nodes / attribute-less
    /// elements).
    pub fn attributes(&self, id: NodeId) -> &[Attr] {
        let lo = self.attrs.partition_point(|a| a.node < id);
        let hi = self.attrs.partition_point(|a| a.node <= id);
        &self.attrs[lo..hi]
    }

    /// All intervals of nodes matching `pred`, in document order. This is
    /// the raw input to position-histogram construction.
    pub fn intervals_where(&self, mut pred: impl FnMut(NodeId) -> bool) -> Vec<Interval> {
        self.iter()
            .filter(|&id| pred(id))
            .map(|id| self.interval(id))
            .collect()
    }

    /// Appends `doc`'s whole tree as a new **last child of this tree's
    /// root**, returning the appended subtree's root id.
    ///
    /// Cost is O(`doc`) — the appended nodes land at the tail of the
    /// pre-order arena, so no existing node's id, interval or depth
    /// changes; only the root's `end` label grows. This is what makes a
    /// slack-grid `add_document` O(new document): the mega-tree extends
    /// in place instead of being replayed. The result is structurally
    /// identical to rebuilding the forest with `doc` appended (tag ids
    /// may differ; tags are resolved by name).
    pub fn append_document_subtree(&mut self, doc: &XmlTree) -> NodeId {
        let offset = self.nodes.len() as u32;
        let text_offset = self.texts.len() as u32;
        // Resolve the document's tag ids into this tree's interner.
        let tag_map: Vec<u32> = (0..doc.tags.len() as u32)
            .map(|t| self.tags.intern(doc.tags.name(TagId(t))).0)
            .collect();
        // Link the previous last top-level subtree to the new one.
        if let Some(first) = self.first_child(NodeId(0)) {
            let mut last = first;
            while let Some(next) = self.next_sibling(last) {
                last = next;
            }
            self.nodes[last.index()].next_sibling = offset;
        }
        self.nodes.reserve(doc.nodes.len());
        for n in &doc.nodes {
            self.nodes.push(NodeRaw {
                parent: if n.parent == NIL {
                    0
                } else {
                    n.parent + offset
                },
                next_sibling: if n.next_sibling == NIL {
                    NIL
                } else {
                    n.next_sibling + offset
                },
                subtree_end: n.subtree_end + offset,
                tag: if n.tag == NIL {
                    NIL
                } else {
                    tag_map[n.tag as usize]
                },
                text: if n.text == NIL {
                    NIL
                } else {
                    n.text + text_offset
                },
                depth: n.depth + 1,
            });
        }
        self.texts.extend(doc.texts.iter().cloned());
        self.attrs.extend(doc.attrs.iter().map(|a| Attr {
            node: NodeId(a.node.0 + offset),
            name: a.name.clone(),
            value: a.value.clone(),
        }));
        self.nodes[0].subtree_end = (self.nodes.len() - 1) as u32;
        NodeId(offset)
    }

    /// Removes the tail subtree starting at position `from` — the
    /// inverse of [`XmlTree::append_document_subtree`] for the most
    /// recently appended document. `from` must be a direct child of the
    /// root whose subtree runs to the end of the arena; no other node's
    /// id or label changes. Cost is O(removed subtree). Tags interned
    /// for the removed subtree stay in the interner (they match no
    /// nodes, which is harmless and keeps every live `TagId` valid).
    pub fn truncate_last_subtree(&mut self, from: NodeId) -> Result<()> {
        let idx = from.index();
        if idx == 0 || idx >= self.nodes.len() {
            return Err(Error::Builder(format!(
                "truncate_last_subtree: {from:?} is not a removable subtree root"
            )));
        }
        let n = &self.nodes[idx];
        if n.parent != 0 || n.subtree_end as usize != self.nodes.len() - 1 {
            return Err(Error::Builder(format!(
                "truncate_last_subtree: {from:?} is not the last root-child subtree"
            )));
        }
        // Texts owned by the removed range sit at the tail of `texts`
        // (builders append text in document order): truncate to the
        // smallest index referenced by a removed node.
        let min_text = self.nodes[idx..]
            .iter()
            .filter(|n| n.text != NIL)
            .map(|n| n.text)
            .min();
        if let Some(t) = min_text {
            self.texts.truncate(t as usize);
        }
        let keep_attrs = self.attrs.partition_point(|a| a.node < from);
        self.attrs.truncate(keep_attrs);
        // Unlink from the previous root child (walk of the root's
        // children — O(document count), never O(nodes)).
        let mut child = self.first_child(NodeId(0));
        while let Some(c) = child {
            if self.nodes[c.index()].next_sibling == from.0 {
                self.nodes[c.index()].next_sibling = NIL;
                break;
            }
            child = self.next_sibling(c);
        }
        self.nodes.truncate(idx);
        self.nodes[0].subtree_end = (self.nodes.len() - 1) as u32;
        Ok(())
    }
}

/// Iterator over direct children.
pub struct Children<'a> {
    tree: &'a XmlTree,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.tree.next_sibling(cur);
        Some(cur)
    }
}

/// Incremental builder producing an [`XmlTree`] in document order.
///
/// The builder enforces pre-order construction: `open` pushes an element,
/// `text` adds a leaf, `close` pops. `finish` validates that exactly one
/// top-level node was produced (use an explicit synthetic root such as
/// `#root` when merging several documents into the paper's "mega-tree").
#[derive(Debug, Default)]
pub struct TreeBuilder {
    nodes: Vec<NodeRaw>,
    texts: Vec<String>,
    tags: TagInterner,
    attrs: Vec<Attr>,
    /// Stack of open element indices.
    stack: Vec<u32>,
    /// Last completed child at each open level (for sibling links); the
    /// entry at `stack.len()` tracks top-level nodes.
    last_child: Vec<u32>,
    top_level: u32,
}

impl TreeBuilder {
    pub fn new() -> Self {
        Self {
            top_level: NIL,
            last_child: vec![NIL],
            ..Default::default()
        }
    }

    /// Interns a tag without adding a node (useful for pre-registering a
    /// deterministic tag order).
    pub fn intern(&mut self, name: &str) -> TagId {
        self.tags.intern(name)
    }

    fn push_node(&mut self, tag: u32, text: u32) -> NodeId {
        let idx = self.nodes.len() as u32;
        let parent = self.stack.last().copied().unwrap_or(NIL);
        let depth = self.stack.len() as u32;
        // Link the previous sibling at this level to the new node.
        let level = self.stack.len();
        if self.last_child[level] != NIL {
            self.nodes[self.last_child[level] as usize].next_sibling = idx;
        } else if parent == NIL && self.top_level == NIL {
            self.top_level = idx;
        }
        self.last_child[level] = idx;
        self.nodes.push(NodeRaw {
            parent,
            next_sibling: NIL,
            subtree_end: idx,
            tag,
            text,
            depth,
        });
        NodeId(idx)
    }

    /// Opens an element with the given tag name.
    pub fn open(&mut self, tag: &str) -> NodeId {
        let t = self.tags.intern(tag);
        self.open_id(t)
    }

    /// Opens an element with an already-interned tag.
    pub fn open_id(&mut self, tag: TagId) -> NodeId {
        let id = self.push_node(tag.0, NIL);
        self.stack.push(id.0);
        self.last_child.push(NIL);
        id
    }

    /// Adds a text leaf under the innermost open element.
    pub fn text(&mut self, content: &str) -> NodeId {
        let tidx = self.texts.len() as u32;
        self.texts.push(content.to_owned());
        self.push_node(NIL, tidx)
    }

    /// Attaches an attribute to the innermost open element.
    pub fn attr(&mut self, name: &str, value: &str) -> Result<()> {
        let Some(&owner) = self.stack.last() else {
            return Err(Error::Builder("attr() with no open element".into()));
        };
        self.attrs.push(Attr {
            node: NodeId(owner),
            name: name.to_owned(),
            value: value.to_owned(),
        });
        Ok(())
    }

    /// Closes the innermost open element, fixing its subtree end label.
    pub fn close(&mut self) -> Result<()> {
        let Some(idx) = self.stack.pop() else {
            return Err(Error::Builder("close() with no open element".into()));
        };
        self.last_child.pop();
        let end = (self.nodes.len() - 1) as u32;
        self.nodes[idx as usize].subtree_end = end;
        Ok(())
    }

    /// Number of currently open elements.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Number of nodes emitted so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finalizes the tree. Fails if elements are still open, nothing was
    /// built, or more than one top-level node exists.
    pub fn finish(self) -> Result<XmlTree> {
        if !self.stack.is_empty() {
            return Err(Error::Builder(format!(
                "{} element(s) left open",
                self.stack.len()
            )));
        }
        if self.nodes.is_empty() {
            return Err(Error::Builder("empty tree".into()));
        }
        if self.nodes[self.top_level as usize].next_sibling != NIL {
            return Err(Error::Builder(
                "multiple top-level nodes; wrap documents in a synthetic root".into(),
            ));
        }
        Ok(XmlTree {
            nodes: self.nodes,
            texts: self.texts,
            tags: self.tags,
            attrs: self.attrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the six-person department document of Fig. 1 of the paper.
    pub(crate) fn fig1_tree() -> XmlTree {
        let mut b = TreeBuilder::new();
        b.open("department");
        b.open("faculty"); // faculty 1
        b.open("name");
        b.close().unwrap();
        b.open("RA");
        b.close().unwrap();
        b.close().unwrap();
        b.open("staff");
        b.open("name");
        b.close().unwrap();
        b.close().unwrap();
        b.open("faculty"); // faculty 2
        for t in ["name", "secretary", "RA", "RA", "RA"] {
            b.open(t);
            b.close().unwrap();
        }
        b.close().unwrap();
        b.open("lecturer");
        for t in ["name", "TA", "TA", "TA"] {
            b.open(t);
            b.close().unwrap();
        }
        b.close().unwrap();
        b.open("faculty"); // faculty 3
        for t in ["name", "secretary", "TA", "RA", "RA", "TA"] {
            b.open(t);
            b.close().unwrap();
        }
        b.close().unwrap();
        b.open("research_scientist");
        for t in ["name", "secretary", "RA", "RA", "RA", "RA"] {
            b.open(t);
            b.close().unwrap();
        }
        b.close().unwrap();
        b.close().unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn fig1_shape() {
        let t = fig1_tree();
        assert_eq!(t.len(), 31);
        let faculty = t.tags().get("faculty").unwrap();
        let ta = t.tags().get("TA").unwrap();
        let n_fac = t.iter().filter(|&n| t.tag(n) == Some(faculty)).count();
        let n_ta = t.iter().filter(|&n| t.tag(n) == Some(ta)).count();
        assert_eq!(n_fac, 3, "paper: three faculty nodes");
        assert_eq!(n_ta, 5, "paper: five TA nodes");
    }

    #[test]
    fn intervals_nest_properly() {
        let t = fig1_tree();
        // Root covers everything.
        assert_eq!(t.interval(t.root()), Interval { start: 0, end: 30 });
        for n in t.iter() {
            let iv = t.interval(n);
            assert!(iv.start <= iv.end);
            if let Some(p) = t.parent(n) {
                let piv = t.interval(p);
                assert!(piv.start < iv.start && piv.end >= iv.end);
            }
        }
    }

    #[test]
    fn ancestor_relation_matches_parent_chain() {
        let t = fig1_tree();
        for a in t.iter() {
            for d in t.iter() {
                let by_interval = t.is_ancestor(a, d);
                let mut cur = t.parent(d);
                let mut by_chain = false;
                while let Some(p) = cur {
                    if p == a {
                        by_chain = true;
                        break;
                    }
                    cur = t.parent(p);
                }
                assert_eq!(by_interval, by_chain, "a={a:?} d={d:?}");
            }
        }
    }

    #[test]
    fn children_iteration() {
        let t = fig1_tree();
        let kids: Vec<_> = t
            .children(t.root())
            .map(|c| t.tag_name(c).unwrap().to_owned())
            .collect();
        assert_eq!(
            kids,
            vec![
                "faculty",
                "staff",
                "faculty",
                "lecturer",
                "faculty",
                "research_scientist"
            ]
        );
        for c in t.children(t.root()) {
            assert_eq!(t.parent(c), Some(t.root()));
            assert_eq!(t.depth(c), 1);
        }
    }

    #[test]
    fn text_nodes_and_direct_text() {
        let mut b = TreeBuilder::new();
        b.open("book");
        b.open("title");
        b.text("XML ");
        b.text("Estimation");
        b.close().unwrap();
        b.open("year");
        b.text("1999");
        b.close().unwrap();
        b.close().unwrap();
        let t = b.finish().unwrap();
        let title = t.iter().find(|&n| t.tag_name(n) == Some("title")).unwrap();
        assert_eq!(t.direct_text(title), "XML Estimation");
        assert_eq!(t.text_content(t.root()), "XML Estimation1999");
        let texts: Vec<_> = t.iter().filter(|&n| t.kind(n) == NodeKind::Text).collect();
        assert_eq!(texts.len(), 3);
        assert_eq!(t.direct_text(texts[2]), "1999");
    }

    #[test]
    fn attributes_attach_to_innermost_element() {
        let mut b = TreeBuilder::new();
        b.open("a");
        b.attr("id", "1").unwrap();
        b.open("b");
        b.attr("x", "y").unwrap();
        b.attr("z", "w").unwrap();
        b.close().unwrap();
        b.close().unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.attributes(NodeId(0)).len(), 1);
        let battrs = t.attributes(NodeId(1));
        assert_eq!(battrs.len(), 2);
        assert_eq!(battrs[0].name, "x");
        assert_eq!(battrs[1].value, "w");
    }

    #[test]
    fn builder_misuse_is_rejected() {
        let mut b = TreeBuilder::new();
        assert!(b.close().is_err());

        let mut b = TreeBuilder::new();
        b.open("a");
        assert!(b.finish().is_err(), "unclosed element");

        let b = TreeBuilder::new();
        assert!(b.finish().is_err(), "empty tree");

        let mut b = TreeBuilder::new();
        b.open("a");
        b.close().unwrap();
        b.open("b");
        b.close().unwrap();
        assert!(b.finish().is_err(), "two roots");

        let mut b = TreeBuilder::new();
        assert!(b.attr("k", "v").is_err(), "attr with no open element");
    }

    #[test]
    fn descendant_count_and_iteration_agree() {
        let t = fig1_tree();
        for n in t.iter() {
            assert_eq!(t.descendants(n).count(), t.descendant_count(n));
        }
        assert_eq!(t.descendant_count(t.root()), 30);
    }

    #[test]
    fn append_subtree_matches_forest_replay() {
        use crate::forest::ForestBuilder;
        let a = crate::parser::parse_str("<a k=\"v\"><x>hi</x><x/></a>").unwrap();
        let b = crate::parser::parse_str("<b><y><z/></y>tail</b>").unwrap();

        // Reference: replay both documents through the forest builder.
        let mut fb = ForestBuilder::new();
        fb.add_tree("a", &a).unwrap();
        fb.add_tree("b", &b).unwrap();
        let want = fb.finish().unwrap().into_tree();

        // Incremental: build the forest with only `a`, then append `b`.
        let mut fb = ForestBuilder::new();
        fb.add_tree("a", &a).unwrap();
        let mut got = fb.finish().unwrap().into_tree();
        let appended_root = got.append_document_subtree(&b);
        assert_eq!(appended_root, NodeId(a.len() as u32 + 1));

        assert_eq!(got.len(), want.len());
        for n in want.iter() {
            assert_eq!(got.interval(n), want.interval(n), "{n:?}");
            assert_eq!(got.depth(n), want.depth(n), "{n:?}");
            assert_eq!(got.parent(n), want.parent(n), "{n:?}");
            assert_eq!(got.next_sibling(n), want.next_sibling(n), "{n:?}");
            assert_eq!(got.tag_name(n), want.tag_name(n), "{n:?}");
            assert_eq!(got.text(n), want.text(n), "{n:?}");
            assert_eq!(got.attributes(n).len(), want.attributes(n).len());
        }
        // Sibling chain under the root sees the appended document.
        let kids: Vec<_> = got.children(got.root()).collect();
        assert_eq!(kids, vec![NodeId(1), appended_root]);
    }

    #[test]
    fn truncate_last_subtree_inverts_append() {
        use crate::forest::ForestBuilder;
        let a = crate::parser::parse_str("<a><x>one</x></a>").unwrap();
        let b = crate::parser::parse_str("<b q=\"1\"><y>two</y></b>").unwrap();
        let mut fb = ForestBuilder::new();
        fb.add_tree("a", &a).unwrap();
        let want = fb.finish().unwrap().into_tree();

        let mut t = want.clone();
        let root = t.append_document_subtree(&b);
        t.truncate_last_subtree(root).unwrap();
        assert_eq!(t.len(), want.len());
        for n in want.iter() {
            assert_eq!(t.interval(n), want.interval(n));
            assert_eq!(t.next_sibling(n), want.next_sibling(n));
            assert_eq!(t.text(n), want.text(n));
        }
        assert_eq!(t.attributes(NodeId(0)).len(), 0);
        assert_eq!(t.children(t.root()).count(), 1);

        // Append again after truncation still works.
        let again = t.append_document_subtree(&b);
        assert_eq!(again, root);
        assert_eq!(t.text_content(again), "two");

        // Misuse: non-tail and non-root-child targets are rejected.
        assert!(t.truncate_last_subtree(NodeId(0)).is_err());
        assert!(t.truncate_last_subtree(NodeId(1)).is_err(), "not the tail");
        let inner = NodeId(again.0 + 1);
        assert!(t.truncate_last_subtree(inner).is_err(), "not a root child");
    }

    #[test]
    fn interval_equals_id_and_subtree_end() {
        let t = fig1_tree();
        // First faculty: id 1, subtree = {name, RA} -> end 3.
        assert_eq!(t.interval(NodeId(1)), Interval { start: 1, end: 3 });
        // Leaf: end == start.
        assert_eq!(t.interval(NodeId(2)), Interval { start: 2, end: 2 });
    }
}
