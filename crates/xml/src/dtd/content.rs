//! Content-model AST for `<!ELEMENT>` declarations.

use std::fmt;

/// Repetition suffix on a content particle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// Exactly one (no suffix).
    One,
    /// `?` — zero or one.
    Opt,
    /// `*` — zero or more.
    Star,
    /// `+` — one or more.
    Plus,
}

impl Quantifier {
    /// Minimum number of occurrences implied by the quantifier.
    pub fn min(self) -> usize {
        match self {
            Quantifier::One | Quantifier::Plus => 1,
            Quantifier::Opt | Quantifier::Star => 0,
        }
    }

    /// Whether the quantifier allows repetition beyond one occurrence.
    pub fn repeats(self) -> bool {
        matches!(self, Quantifier::Star | Quantifier::Plus)
    }
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::One => Ok(()),
            Quantifier::Opt => write!(f, "?"),
            Quantifier::Star => write!(f, "*"),
            Quantifier::Plus => write!(f, "+"),
        }
    }
}

/// A particle within a content model: either an element name or a nested
/// group, with a quantifier.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentParticle {
    pub kind: ParticleKind,
    pub quant: Quantifier,
}

/// The payload of a [`ContentParticle`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParticleKind {
    /// A child element reference.
    Name(String),
    /// `(a, b, c)` — all in order.
    Seq(Vec<ContentParticle>),
    /// `(a | b | c)` — exactly one alternative.
    Choice(Vec<ContentParticle>),
}

/// The complete content model of an element declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentModel {
    /// `EMPTY`.
    Empty,
    /// `ANY`.
    Any,
    /// `(#PCDATA)` — text only.
    PcData,
    /// `(#PCDATA | a | b)*` — mixed content; the listed element names may
    /// interleave with text.
    Mixed(Vec<String>),
    /// Pure element content described by a particle grammar.
    Children(ContentParticle),
}

impl ContentModel {
    /// Collects every element name that can appear as a *direct child*
    /// under this content model.
    pub fn child_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        match self {
            ContentModel::Empty | ContentModel::Any | ContentModel::PcData => {}
            ContentModel::Mixed(names) => out.extend(names.iter().cloned()),
            ContentModel::Children(p) => collect_names(p, &mut out),
        }
        out.sort();
        out.dedup();
        out
    }

    /// True if text (`#PCDATA`) may appear directly under this element.
    pub fn allows_text(&self) -> bool {
        matches!(
            self,
            ContentModel::PcData | ContentModel::Mixed(_) | ContentModel::Any
        )
    }

    /// Element names that are *required* to appear at least once in any
    /// valid expansion of this model (used for uniqueness reasoning).
    pub fn required_children(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let ContentModel::Children(p) = self {
            collect_required(p, &mut out);
        }
        out.sort();
        out.dedup();
        out
    }
}

fn collect_names(p: &ContentParticle, out: &mut Vec<String>) {
    match &p.kind {
        ParticleKind::Name(n) => out.push(n.clone()),
        ParticleKind::Seq(parts) | ParticleKind::Choice(parts) => {
            for part in parts {
                collect_names(part, out);
            }
        }
    }
}

fn collect_required(p: &ContentParticle, out: &mut Vec<String>) {
    if p.quant.min() == 0 {
        return;
    }
    match &p.kind {
        ParticleKind::Name(n) => out.push(n.clone()),
        ParticleKind::Seq(parts) => {
            for part in parts {
                collect_required(part, out);
            }
        }
        ParticleKind::Choice(parts) => {
            // Required only if every alternative requires it.
            let mut per_alt: Vec<Vec<String>> = Vec::with_capacity(parts.len());
            for part in parts {
                let mut v = Vec::new();
                collect_required(part, &mut v);
                per_alt.push(v);
            }
            if let Some((first, rest)) = per_alt.split_first() {
                for name in first {
                    if rest.iter().all(|alt| alt.contains(name)) {
                        out.push(name.clone());
                    }
                }
            }
        }
    }
}

impl fmt::Display for ContentParticle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParticleKind::Name(n) => write!(f, "{n}")?,
            ParticleKind::Seq(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")?;
            }
            ParticleKind::Choice(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")?;
            }
        }
        write!(f, "{}", self.quant)
    }
}

impl fmt::Display for ContentModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentModel::Empty => write!(f, "EMPTY"),
            ContentModel::Any => write!(f, "ANY"),
            ContentModel::PcData => write!(f, "(#PCDATA)"),
            ContentModel::Mixed(names) => {
                write!(f, "(#PCDATA")?;
                for n in names {
                    write!(f, "|{n}")?;
                }
                write!(f, ")*")
            }
            ContentModel::Children(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(n: &str, q: Quantifier) -> ContentParticle {
        ContentParticle {
            kind: ParticleKind::Name(n.into()),
            quant: q,
        }
    }

    #[test]
    fn child_names_deduplicates() {
        let model = ContentModel::Children(ContentParticle {
            kind: ParticleKind::Seq(vec![
                name("a", Quantifier::One),
                ContentParticle {
                    kind: ParticleKind::Choice(vec![
                        name("b", Quantifier::Star),
                        name("a", Quantifier::One),
                    ]),
                    quant: Quantifier::Plus,
                },
            ]),
            quant: Quantifier::One,
        });
        assert_eq!(model.child_names(), vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn required_children_sequence() {
        // (name, email?, employee+)
        let model = ContentModel::Children(ContentParticle {
            kind: ParticleKind::Seq(vec![
                name("name", Quantifier::One),
                name("email", Quantifier::Opt),
                name("employee", Quantifier::Plus),
            ]),
            quant: Quantifier::One,
        });
        assert_eq!(
            model.required_children(),
            vec!["employee".to_owned(), "name".to_owned()]
        );
    }

    #[test]
    fn required_children_choice_requires_all_alternatives() {
        // (name,(a|b)) — neither a nor b individually required; name is.
        let model = ContentModel::Children(ContentParticle {
            kind: ParticleKind::Seq(vec![
                name("name", Quantifier::One),
                ContentParticle {
                    kind: ParticleKind::Choice(vec![
                        name("a", Quantifier::One),
                        name("b", Quantifier::One),
                    ]),
                    quant: Quantifier::One,
                },
            ]),
            quant: Quantifier::One,
        });
        assert_eq!(model.required_children(), vec!["name".to_owned()]);

        // (x|x) — x required through both alternatives.
        let model = ContentModel::Children(ContentParticle {
            kind: ParticleKind::Choice(vec![
                name("x", Quantifier::One),
                name("x", Quantifier::Plus),
            ]),
            quant: Quantifier::One,
        });
        assert_eq!(model.required_children(), vec!["x".to_owned()]);
    }

    #[test]
    fn optional_group_contributes_nothing() {
        let model = ContentModel::Children(ContentParticle {
            kind: ParticleKind::Seq(vec![name("a", Quantifier::One)]),
            quant: Quantifier::Opt,
        });
        assert!(model.required_children().is_empty());
    }

    #[test]
    fn display_round_trip_shapes() {
        let model = ContentModel::Children(ContentParticle {
            kind: ParticleKind::Seq(vec![
                name("name", Quantifier::One),
                ContentParticle {
                    kind: ParticleKind::Choice(vec![
                        name("manager", Quantifier::One),
                        name("department", Quantifier::One),
                        name("employee", Quantifier::One),
                    ]),
                    quant: Quantifier::Plus,
                },
            ]),
            quant: Quantifier::One,
        });
        assert_eq!(model.to_string(), "(name,(manager|department|employee)+)");
        assert_eq!(ContentModel::Empty.to_string(), "EMPTY");
        assert_eq!(ContentModel::PcData.to_string(), "(#PCDATA)");
        assert_eq!(
            ContentModel::Mixed(vec!["em".into()]).to_string(),
            "(#PCDATA|em)*"
        );
    }

    #[test]
    fn allows_text() {
        assert!(ContentModel::PcData.allows_text());
        assert!(ContentModel::Mixed(vec![]).allows_text());
        assert!(ContentModel::Any.allows_text());
        assert!(!ContentModel::Empty.allows_text());
    }
}
