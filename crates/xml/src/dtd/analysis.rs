//! Structural analysis of a DTD — the "schema information" of Section 4.
//!
//! From the element/child grammar we derive:
//!
//! * the **descendant closure**: which tags can appear (at any depth)
//!   under which;
//! * the **no-overlap property** (Definition 2): a tag whose nodes can
//!   never nest, i.e. the tag is not reachable from itself;
//! * **impossible pairs**: `desc` not reachable from `anc` ⇒ a query
//!   `anc//desc` has zero matches, no histograms needed;
//! * **sole-parent uniqueness**: if every `child` element can only appear
//!   directly under one tag `p`, then `count(p/child) = count(child)`, and
//!   when additionally `p` has the no-overlap property,
//!   `count(p//child) = count(child)` exactly.

use super::{ContentModel, Dtd};
use std::collections::{BTreeMap, BTreeSet};

/// Precomputed structural facts about a DTD.
#[derive(Debug, Clone)]
pub struct DtdAnalysis {
    /// Direct child edges: parent tag → set of possible child tags.
    children: BTreeMap<String, BTreeSet<String>>,
    /// Descendant closure: tag → set of tags reachable below it.
    closure: BTreeMap<String, BTreeSet<String>>,
    /// child tag → the unique tag it can appear under, if unique.
    sole_parent: BTreeMap<String, Option<String>>,
    /// child tag → parents that *require* at least one occurrence of it.
    required_by: BTreeMap<String, BTreeSet<String>>,
}

impl DtdAnalysis {
    pub fn new(dtd: &Dtd) -> Self {
        let mut children: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut parents: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut required_by: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();

        for (name, model) in &dtd.elements {
            let kids: BTreeSet<String> = match model {
                // ANY means "any declared element may appear".
                ContentModel::Any => dtd.elements.keys().cloned().collect(),
                other => other.child_names().into_iter().collect(),
            };
            for k in &kids {
                parents.entry(k.clone()).or_default().insert(name.clone());
            }
            for r in model.required_children() {
                required_by.entry(r).or_default().insert(name.clone());
            }
            children.insert(name.clone(), kids);
        }

        // Descendant closure via BFS from each tag.
        let mut closure: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for name in dtd.elements.keys() {
            let mut seen: BTreeSet<String> = BTreeSet::new();
            let mut frontier: Vec<&str> = vec![name.as_str()];
            while let Some(cur) = frontier.pop() {
                if let Some(kids) = children.get(cur) {
                    for k in kids {
                        if seen.insert(k.clone()) {
                            frontier.push(k.as_str());
                        }
                    }
                }
            }
            closure.insert(name.clone(), seen);
        }

        let sole_parent = parents
            .iter()
            .map(|(child, ps)| {
                let unique = if ps.len() == 1 {
                    Some(ps.iter().next().expect("len 1").clone()) // xlint: allow(no-panic, "branch taken only when ps.len() == 1")
                } else {
                    None
                };
                (child.clone(), unique)
            })
            .collect();

        DtdAnalysis {
            children,
            closure,
            sole_parent,
            required_by,
        }
    }

    /// Tags that may appear directly under `tag`.
    pub fn child_tags(&self, tag: &str) -> impl Iterator<Item = &str> {
        self.children
            .get(tag)
            .into_iter()
            .flatten()
            .map(String::as_str)
    }

    /// True iff `desc` can appear somewhere below `anc`.
    pub fn can_descend(&self, anc: &str, desc: &str) -> bool {
        self.closure.get(anc).is_some_and(|s| s.contains(desc))
    }

    /// The no-overlap property (Definition 2): nodes with this tag can
    /// never be nested within each other. Derived as "tag not reachable
    /// from itself". Tags not declared in the DTD return `false`
    /// (unknown ⇒ assume overlap possible).
    pub fn no_overlap(&self, tag: &str) -> bool {
        match self.closure.get(tag) {
            Some(desc) => !desc.contains(tag),
            None => false,
        }
    }

    /// If every element with this tag must appear directly under exactly
    /// one parent tag, returns that parent (the `book/author` uniqueness
    /// example of Section 4).
    pub fn sole_parent(&self, tag: &str) -> Option<&str> {
        self.sole_parent.get(tag).and_then(|o| o.as_deref())
    }

    /// Parents whose content model requires at least one `tag` child.
    pub fn required_by(&self, tag: &str) -> impl Iterator<Item = &str> {
        self.required_by
            .get(tag)
            .into_iter()
            .flatten()
            .map(String::as_str)
    }

    /// All tags known to the analysis.
    pub fn tags(&self) -> impl Iterator<Item = &str> {
        self.children.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::parser::{parse_dtd, PAPER_SYNTHETIC_DTD};

    fn paper() -> DtdAnalysis {
        parse_dtd(PAPER_SYNTHETIC_DTD).unwrap().analyze()
    }

    #[test]
    fn paper_dtd_overlap_properties_match_table3() {
        let a = paper();
        // Table 3 of the paper: manager and department overlap;
        // employee, email and name do not.
        assert!(!a.no_overlap("manager"));
        assert!(!a.no_overlap("department"));
        assert!(a.no_overlap("employee"));
        assert!(a.no_overlap("email"));
        assert!(a.no_overlap("name"));
    }

    #[test]
    fn descendant_closure() {
        let a = paper();
        assert!(a.can_descend("manager", "email"));
        assert!(a.can_descend("manager", "manager"));
        assert!(a.can_descend("department", "department"));
        assert!(!a.can_descend("employee", "employee"));
        assert!(!a.can_descend("email", "name"));
        assert!(!a.can_descend("employee", "department"));
    }

    #[test]
    fn sole_parent_uniqueness() {
        let dtd = parse_dtd(
            "<!ELEMENT book (author+, title)><!ELEMENT author (#PCDATA)>
             <!ELEMENT title (#PCDATA)>",
        )
        .unwrap();
        let a = dtd.analyze();
        assert_eq!(a.sole_parent("author"), Some("book"));
        assert_eq!(a.sole_parent("title"), Some("book"));
        assert_eq!(a.sole_parent("book"), None, "book has no declared parent");
        // In the paper DTD, name can appear under manager, department and
        // employee, so it has no sole parent.
        let p = paper();
        assert_eq!(p.sole_parent("name"), None);
        // employee can appear under manager and department.
        assert_eq!(p.sole_parent("employee"), None);
    }

    #[test]
    fn required_by_tracks_mandatory_children() {
        let a = paper();
        let req: Vec<_> = a.required_by("name").collect();
        assert_eq!(req, vec!["department", "employee", "manager"]);
        let req: Vec<_> = a.required_by("email").collect();
        assert!(req.is_empty(), "email is optional everywhere");
        let req: Vec<_> = a.required_by("employee").collect();
        assert_eq!(
            req,
            vec!["department"],
            "manager requires (m|d|e)+ not employee"
        );
    }

    #[test]
    fn any_content_reaches_every_tag() {
        let dtd = parse_dtd("<!ELEMENT a ANY><!ELEMENT b EMPTY>").unwrap();
        let an = dtd.analyze();
        assert!(an.can_descend("a", "b"));
        assert!(an.can_descend("a", "a"));
        assert!(!an.no_overlap("a"));
        assert!(an.no_overlap("b"));
    }

    #[test]
    fn undeclared_tag_defaults() {
        let a = paper();
        assert!(!a.no_overlap("mystery"));
        assert!(!a.can_descend("mystery", "name"));
        assert_eq!(a.sole_parent("mystery"), None);
    }
}
