//! DTD (Document Type Definition) support.
//!
//! The paper uses DTDs twice:
//!
//! 1. **Data generation** (Section 5.2): the synthetic data set is produced
//!    by the IBM XML generator from a `manager/department/employee` DTD.
//!    [`crate::dtd::ContentModel`] is the grammar the generator in
//!    `xmlest-datagen` expands.
//! 2. **Schema information** (Section 4): structural constraints derived
//!    from the DTD power the estimation shortcuts — the *no-overlap*
//!    property (an element that cannot appear inside itself), impossible
//!    ancestor/descendant pairs (estimate 0), and required-parent
//!    uniqueness (estimate = child count). [`analysis::DtdAnalysis`]
//!    computes all three.

pub mod analysis;
pub mod content;
pub mod parser;

pub use analysis::DtdAnalysis;
pub use content::{ContentModel, ContentParticle, Quantifier};
pub use parser::parse_dtd;

use std::collections::BTreeMap;

/// A parsed DTD: element declarations keyed by element name, in declaration
/// order (BTreeMap keeps iteration deterministic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dtd {
    pub elements: BTreeMap<String, ContentModel>,
}

impl Dtd {
    /// Content model of `name`, if declared.
    pub fn element(&self, name: &str) -> Option<&ContentModel> {
        self.elements.get(name)
    }

    /// All declared element names in sorted order.
    pub fn element_names(&self) -> impl Iterator<Item = &str> {
        self.elements.keys().map(String::as_str)
    }

    /// Runs the structural analysis (reachability, overlap, uniqueness).
    pub fn analyze(&self) -> DtdAnalysis {
        DtdAnalysis::new(self)
    }
}
