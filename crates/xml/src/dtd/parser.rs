//! Parser for the internal DTD subset.
//!
//! Supports `<!ELEMENT name content-model>` declarations with the full
//! content-particle grammar (sequences, choices, nesting, `? * +`
//! quantifiers, `EMPTY`, `ANY`, `(#PCDATA)` and mixed content).
//! `<!ATTLIST>`, `<!ENTITY>` and `<!NOTATION>` declarations, comments and
//! processing instructions are recognized and skipped.

use super::content::{ContentModel, ContentParticle, ParticleKind, Quantifier};
use super::Dtd;
use crate::error::{Error, Result};

/// Parses the text of an internal DTD subset (the part between `[` and `]`
/// of a DOCTYPE, or a standalone `.dtd` file body).
pub fn parse_dtd(input: &str) -> Result<Dtd> {
    let mut p = DtdCursor {
        input: input.as_bytes(),
        pos: 0,
    };
    let mut dtd = Dtd::default();
    loop {
        p.skip_ws_and_comments()?;
        if p.peek().is_none() {
            return Ok(dtd);
        }
        if p.eat("<!ELEMENT") {
            p.require_ws()?;
            let name = p.read_name()?;
            p.require_ws()?;
            let model = p.read_content_model()?;
            p.skip_ws();
            p.expect(">")?;
            if dtd.elements.insert(name.clone(), model).is_some() {
                return Err(Error::dtd(format!("duplicate <!ELEMENT {name}>"), p.pos));
            }
        } else if p.eat("<!ATTLIST") || p.eat("<!ENTITY") || p.eat("<!NOTATION") {
            p.skip_until_gt()?;
        } else if p.eat("<?") {
            p.skip_until("?>")?;
        } else {
            return Err(Error::dtd("expected a declaration", p.pos));
        }
    }
}

struct DtdCursor<'a> {
    input: &'a [u8],
    pos: usize,
}

impl DtdCursor<'_> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(Error::dtd(msg, self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.eat(s) {
            Ok(())
        } else {
            self.err(format!("expected {s:?}"))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn require_ws(&mut self) -> Result<()> {
        if !matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            return self.err("expected whitespace");
        }
        self.skip_ws();
        Ok(())
    }

    fn skip_ws_and_comments(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.eat("<!--") {
                self.skip_until("-->")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, s: &str) -> Result<()> {
        let needle = s.as_bytes();
        match self.input[self.pos..]
            .windows(needle.len())
            .position(|w| w == needle)
        {
            Some(p) => {
                self.pos += p + needle.len();
                Ok(())
            }
            None => self.err(format!("unterminated construct (looking for {s:?})")),
        }
    }

    /// Skips to the matching `>` of a declaration we don't interpret,
    /// ignoring `>` inside quoted strings.
    fn skip_until_gt(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                None => return self.err("unterminated declaration"),
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(q @ (b'"' | b'\'')) => {
                    self.pos += 1;
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == q {
                            break;
                        }
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => self.pos += 1,
            _ => return self.err("expected a name"),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.pos += 1;
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| Error::dtd("invalid UTF-8 in name", start))?
            .to_owned())
    }

    fn read_quantifier(&mut self) -> Quantifier {
        match self.peek() {
            Some(b'?') => {
                self.pos += 1;
                Quantifier::Opt
            }
            Some(b'*') => {
                self.pos += 1;
                Quantifier::Star
            }
            Some(b'+') => {
                self.pos += 1;
                Quantifier::Plus
            }
            _ => Quantifier::One,
        }
    }

    fn read_content_model(&mut self) -> Result<ContentModel> {
        if self.eat("EMPTY") {
            return Ok(ContentModel::Empty);
        }
        if self.eat("ANY") {
            return Ok(ContentModel::Any);
        }
        if self.peek() != Some(b'(') {
            return self.err("expected '(' or EMPTY or ANY");
        }
        // Look ahead for #PCDATA.
        let save = self.pos;
        self.pos += 1;
        self.skip_ws();
        if self.eat("#PCDATA") {
            self.skip_ws();
            if self.eat(")") {
                // (#PCDATA) possibly followed by '*'.
                let _ = self.read_quantifier();
                return Ok(ContentModel::PcData);
            }
            // Mixed content: (#PCDATA | a | b)*
            let mut names = Vec::new();
            loop {
                self.skip_ws();
                if self.eat(")") {
                    break;
                }
                self.expect("|")?;
                self.skip_ws();
                names.push(self.read_name()?);
            }
            self.expect("*")?;
            return Ok(ContentModel::Mixed(names));
        }
        // Pure element content: rewind and parse the particle grammar.
        self.pos = save;
        let particle = self.read_group()?;
        Ok(ContentModel::Children(particle))
    }

    /// Parses `( cp ((',' cp)* | ('|' cp)*) )` + quantifier.
    fn read_group(&mut self) -> Result<ContentParticle> {
        self.expect("(")?;
        self.skip_ws();
        let first = self.read_cp()?;
        self.skip_ws();
        let mut parts = vec![first];
        let sep = match self.peek() {
            Some(b',') => Some(b','),
            Some(b'|') => Some(b'|'),
            Some(b')') => None,
            _ => return self.err("expected ',', '|' or ')'"),
        };
        if let Some(sep) = sep {
            while self.peek() == Some(sep) {
                self.pos += 1;
                self.skip_ws();
                parts.push(self.read_cp()?);
                self.skip_ws();
            }
        }
        self.expect(")")?;
        let quant = self.read_quantifier();
        let kind = match (sep, parts.len()) {
            (_, 1) => {
                // A singleton group: keep the inner particle, combining
                // quantifiers conservatively (e.g. `(a?)+` -> a*).
                let inner = parts.pop().expect("len checked"); // xlint: allow(no-panic, "match arm requires parts.len() == 1")
                let combined = combine_quantifiers(inner.quant, quant);
                return Ok(ContentParticle {
                    kind: inner.kind,
                    quant: combined,
                });
            }
            (Some(b'|'), _) => ParticleKind::Choice(parts),
            // b',' — and the only other value `sep` can hold is None,
            // which implies a singleton group handled above.
            _ => ParticleKind::Seq(parts),
        };
        Ok(ContentParticle { kind, quant })
    }

    fn read_cp(&mut self) -> Result<ContentParticle> {
        if self.peek() == Some(b'(') {
            return self.read_group();
        }
        let name = self.read_name()?;
        let quant = self.read_quantifier();
        Ok(ContentParticle {
            kind: ParticleKind::Name(name),
            quant,
        })
    }
}

/// `inner` then `outer` applied to a singleton group, e.g. `(a?)+` ≡ `a*`.
fn combine_quantifiers(inner: Quantifier, outer: Quantifier) -> Quantifier {
    use Quantifier::*;
    match (inner, outer) {
        (q, One) => q,
        (One, q) => q,
        (Opt, Opt) => Opt,
        (Plus, Plus) => Plus,
        _ => Star,
    }
}

#[inline]
fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b':' || c >= 0x80
}

#[inline]
fn is_name_char(c: u8) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == b'-' || c == b'.'
}

/// The exact DTD printed in Section 5.2 of the paper.
pub const PAPER_SYNTHETIC_DTD: &str = r#"
<!ELEMENT manager (name,(manager | department | employee)+)>
<!ELEMENT department (name, email?, employee+, department*)>
<!ELEMENT employee (name+,email?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT email (#PCDATA)>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_dtd() {
        let dtd = parse_dtd(PAPER_SYNTHETIC_DTD).unwrap();
        assert_eq!(dtd.elements.len(), 5);
        assert_eq!(
            dtd.element("manager").unwrap().to_string(),
            "(name,(manager|department|employee)+)"
        );
        assert_eq!(
            dtd.element("department").unwrap().to_string(),
            "(name,email?,employee+,department*)"
        );
        assert_eq!(
            dtd.element("employee").unwrap().to_string(),
            "(name+,email?)"
        );
        assert_eq!(dtd.element("name").unwrap(), &ContentModel::PcData);
    }

    #[test]
    fn empty_any_and_mixed() {
        let dtd = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b ANY><!ELEMENT c (#PCDATA|em|strong)*>")
            .unwrap();
        assert_eq!(dtd.element("a").unwrap(), &ContentModel::Empty);
        assert_eq!(dtd.element("b").unwrap(), &ContentModel::Any);
        assert_eq!(
            dtd.element("c").unwrap(),
            &ContentModel::Mixed(vec!["em".into(), "strong".into()])
        );
    }

    #[test]
    fn nested_groups_and_quantifiers() {
        let dtd = parse_dtd("<!ELEMENT a ((b,c)+|(d?,e)*)>").unwrap();
        assert_eq!(dtd.element("a").unwrap().to_string(), "((b,c)+|(d?,e)*)");
        let names = dtd.element("a").unwrap().child_names();
        assert_eq!(names, vec!["b", "c", "d", "e"]);
    }

    #[test]
    fn singleton_group_is_flattened() {
        let dtd = parse_dtd("<!ELEMENT a ((b))><!ELEMENT c ((d?)+)>").unwrap();
        assert_eq!(dtd.element("a").unwrap().to_string(), "b");
        assert_eq!(dtd.element("c").unwrap().to_string(), "d*");
    }

    #[test]
    fn attlist_and_entities_are_skipped() {
        let dtd = parse_dtd(
            r#"<!ELEMENT a (b*)>
               <!ATTLIST a id ID #REQUIRED note CDATA "x > y">
               <!ENTITY copy "(c)">
               <!-- a comment -->
               <!ELEMENT b EMPTY>"#,
        )
        .unwrap();
        assert_eq!(dtd.elements.len(), 2);
    }

    #[test]
    fn duplicate_element_rejected() {
        assert!(parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a ANY>").is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse_dtd("<!WAT>").is_err());
        assert!(parse_dtd("<!ELEMENT a (b").is_err());
        assert!(parse_dtd("<!ELEMENT a (b,|c)>").is_err());
    }

    #[test]
    fn pcdata_with_star() {
        let dtd = parse_dtd("<!ELEMENT a (#PCDATA)*>").unwrap();
        assert_eq!(dtd.element("a").unwrap(), &ContentModel::PcData);
    }
}
