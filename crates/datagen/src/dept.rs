//! The paper's synthetic data set (Section 5.2): documents generated
//! from the `manager/department/employee` DTD, with deep recursion and a
//! mix of overlap (`manager`, `department`) and no-overlap (`employee`,
//! `email`, `name`) predicates — the workload behind Tables 3 and 4 and
//! the Fig. 11 sweep.

use crate::dtdgen::{generate, DtdGenOptions};
use xmlest_xml::dtd::parser::{parse_dtd, PAPER_SYNTHETIC_DTD};
use xmlest_xml::XmlTree;

/// Options for the department data set.
#[derive(Debug, Clone)]
pub struct DeptOptions {
    pub seed: u64,
    /// Soft node-count target.
    pub target_nodes: usize,
    /// Depth budget before the generator winds down.
    pub max_depth: usize,
}

impl Default for DeptOptions {
    fn default() -> Self {
        DeptOptions {
            seed: 42,
            target_nodes: 2_500,
            max_depth: 12,
        }
    }
}

impl DeptOptions {
    /// Matches the scale of Table 3 (~2k elements: 44 managers, 270
    /// departments, 473 employees, 1002 names).
    pub fn paper_scale() -> Self {
        Self::default()
    }

    /// A larger instance for benches.
    pub fn large() -> Self {
        DeptOptions {
            seed: 42,
            target_nodes: 100_000,
            max_depth: 18,
        }
    }
}

/// Generates a department document from the paper's exact DTD.
///
/// The manager lineage is a thin branching process (only managers can
/// spawn managers), so raw samples vary widely in manager count. To keep
/// the Table 3 shape (managers ≪ departments < employees) stable across
/// seeds, generation deterministically walks derived seeds until the
/// counts satisfy those orderings, falling back to the last attempt.
pub fn generate_dept(opts: &DeptOptions) -> XmlTree {
    let dtd = parse_dtd(PAPER_SYNTHETIC_DTD).expect("paper DTD parses");
    let mut choice_weights = std::collections::BTreeMap::new();
    // Only managers can spawn managers in this DTD; weight them up so the
    // manager lineage survives (Table 3 has 44 of them among ~2k nodes).
    choice_weights.insert("manager".to_owned(), 2.0);
    let mut last = None;
    for attempt in 0u64..32 {
        let gen_opts = DtdGenOptions {
            seed: opts.seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)),
            max_depth: opts.max_depth,
            repeat_p: 0.55,
            max_repeat: 6,
            target_nodes: opts.target_nodes,
            grow_bias: 0.5,
            choice_weights: choice_weights.clone(),
        };
        let tree = generate(&dtd, "manager", &gen_opts);
        let count = |name: &str| {
            tree.tags().get(name).map_or(0, |t| {
                tree.iter().filter(|&n| tree.tag(n) == Some(t)).count()
            })
        };
        let (mgr, dept) = (count("manager"), count("department"));
        // Table 3 shape: a healthy but minority manager population.
        if mgr >= 6 && 3 * mgr <= 2 * dept {
            return tree;
        }
        last = Some(tree);
    }
    last.expect("at least one attempt ran")
}

/// The parsed paper DTD (for schema-information experiments).
pub fn paper_dtd() -> xmlest_xml::dtd::Dtd {
    parse_dtd(PAPER_SYNTHETIC_DTD).expect("paper DTD parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlest_xml::stats::{tag_has_no_overlap, TreeStats};

    #[test]
    fn mirrors_table3_overlap_properties() {
        let t = generate_dept(&DeptOptions::default());
        let get = |name: &str| t.tags().get(name).unwrap();
        // Table 3: manager and department overlap; employee, email,
        // name do not.
        assert!(!tag_has_no_overlap(&t, get("manager")));
        assert!(!tag_has_no_overlap(&t, get("department")));
        assert!(tag_has_no_overlap(&t, get("employee")));
        assert!(tag_has_no_overlap(&t, get("email")));
        assert!(tag_has_no_overlap(&t, get("name")));
    }

    #[test]
    fn tag_ordering_roughly_matches_table3() {
        // Table 3 counts: manager 44 < email 173 < department 270 <
        // employee 473 < name 1002. Check the orderings, not the values.
        let t = generate_dept(&DeptOptions::default());
        let s = TreeStats::compute(&t);
        let c = |n: &str| s.tag_counts.get(n).copied().unwrap_or(0);
        assert!(c("manager") < c("department"), "managers {}", c("manager"));
        assert!(c("department") < c("employee"));
        assert!(c("employee") < c("name"));
        assert!(c("email") < c("employee"));
        assert!(c("manager") > 0 && c("email") > 0);
    }

    #[test]
    fn deep_recursion_present() {
        let t = generate_dept(&DeptOptions::default());
        let s = TreeStats::compute(&t);
        assert!(
            s.max_depth >= 6,
            "expected nesting, got depth {}",
            s.max_depth
        );
    }

    #[test]
    fn deterministic() {
        let a = generate_dept(&DeptOptions::default());
        let b = generate_dept(&DeptOptions::default());
        assert_eq!(a.len(), b.len());
    }
}
