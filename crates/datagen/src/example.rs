//! The running example of the paper: the Fig. 1 department document and
//! the Fig. 2 twig query. Shared by tests, docs and the quickstart
//! example so every layer of the system tells the same story (3 faculty,
//! 5 TAs, primitive estimate ≈ 0.6, no-overlap estimate ≈ 2, real = 2).

use xmlest_xml::parser::parse_str;
use xmlest_xml::XmlTree;

/// The Fig. 1 document as XML text.
pub const FIG1_XML: &str = "<department>\
<faculty><name/><RA/></faculty>\
<staff><name/></staff>\
<faculty><name/><secretary/><RA/><RA/><RA/></faculty>\
<lecturer><name/><TA/><TA/><TA/></lecturer>\
<faculty><name/><secretary/><TA/><RA/><RA/><TA/></faculty>\
<research_scientist><name/><secretary/><RA/><RA/><RA/><RA/></research_scientist>\
</department>";

/// Parses [`FIG1_XML`].
pub fn fig1_tree() -> XmlTree {
    parse_str(FIG1_XML).expect("example document parses")
}

/// The Fig. 2 query as a path expression (for `xmlest-query::parse_path`).
pub const FIG2_QUERY: &str = "//department//faculty[.//TA][.//RA]";

/// The simple two-node query of the Section 2 walkthrough.
pub const FACULTY_TA_QUERY: &str = "//faculty//TA";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_the_paper() {
        let t = fig1_tree();
        assert_eq!(t.len(), 31);
        let count = |name: &str| {
            let tag = t.tags().get(name).unwrap();
            t.iter().filter(|&n| t.tag(n) == Some(tag)).count()
        };
        assert_eq!(count("faculty"), 3);
        assert_eq!(count("TA"), 5);
        assert_eq!(count("RA"), 10);
        assert_eq!(count("department"), 1);
    }
}
