//! A DBLP-like bibliography generator (Tables 1 and 2 of the paper).
//!
//! Reproduces the *shape* the estimator cares about, calibrated against
//! the predicate characteristics the paper reports in Table 1:
//!
//! * a flat two-level record structure (`dblp` → record → fields), so
//!   every record and field tag has the **no-overlap** property;
//! * record mix skewed toward `article`/`inproceedings` with rare
//!   `book`s (DBLP 2001: 7,366 articles vs 408 books);
//! * ~2 authors per record on average, `title`/`year`/`url` on almost
//!   every record, `cdrom` on ~9% (1,722 of ~19.9k records);
//! * `cite` values prefixed `conf/` (~63%) or `journals/` (~36%);
//! * `year` values concentrated in the 1980s with 1990s and 1970s tails
//!   (Table 1: 13,066 eighties vs 3,963 nineties).

use crate::words;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xmlest_xml::{TreeBuilder, XmlTree};

/// Generator options.
#[derive(Debug, Clone)]
pub struct DblpOptions {
    pub seed: u64,
    /// Number of bibliography records (the paper's data set has ~19.9k).
    pub records: usize,
}

impl Default for DblpOptions {
    fn default() -> Self {
        DblpOptions {
            seed: 42,
            records: 2_000,
        }
    }
}

impl DblpOptions {
    /// Approximately the paper's data scale (~0.5M nodes).
    pub fn paper_scale() -> Self {
        DblpOptions {
            seed: 42,
            records: 20_000,
        }
    }
}

/// Record kinds with their approximate DBLP-2001 mix.
const KINDS: &[(&str, u32)] = &[
    ("article", 37),
    ("inproceedings", 50),
    ("book", 2),
    ("phdthesis", 4),
    ("proceedings", 7),
];

/// Generates the bibliography tree.
pub fn generate(opts: &DblpOptions) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut b = TreeBuilder::new();
    b.open("dblp");
    for _ in 0..opts.records {
        let kind = pick_kind(&mut rng);
        emit_record(&mut b, &mut rng, kind);
    }
    b.close().expect("dblp open");
    b.finish().expect("balanced tree")
}

fn pick_kind(rng: &mut StdRng) -> &'static str {
    let total: u32 = KINDS.iter().map(|(_, w)| w).sum();
    let mut roll = rng.random_range(0..total);
    for (name, w) in KINDS {
        if roll < *w {
            return name;
        }
        roll -= w;
    }
    KINDS[0].0
}

fn emit_record(b: &mut TreeBuilder, rng: &mut StdRng, kind: &str) {
    b.open(kind);
    // Authors: 1..=5 with geometric tail (mean ~2, like Table 1's
    // 41.5k authors over ~19.9k records).
    let n_authors = words::geometric(rng, 1, 0.5, 5);
    for _ in 0..n_authors {
        b.open("author");
        b.text(&words::person_name(rng));
        b.close().expect("author");
    }
    b.open("title");
    let n_words = 2 + rng.random_range(0..6);
    b.text(&words::title(rng, n_words));
    b.close().expect("title");
    b.open("year");
    b.text(&sample_year(rng).to_string());
    b.close().expect("year");
    // url on ~98% of records.
    if rng.random_bool(0.98) {
        b.open("url");
        b.text(&format!("db/{}/{}.html", kind, rng.random_range(0..100000)));
        b.close().expect("url");
    }
    // cdrom on ~8.6% of records (1,722 / 19,921).
    if rng.random_bool(0.086) {
        b.open("cdrom");
        b.text(&format!("CDROM/{}{:05}", kind, rng.random_range(0..100000)));
        b.close().expect("cdrom");
    }
    // cite: bursty — 60% have none, the rest a geometric batch
    // (~33k cites over ~19.9k records in Table 1).
    if rng.random_bool(0.4) {
        let n = words::geometric(rng, 1, 0.75, 16);
        for _ in 0..n {
            b.open("cite");
            b.text(&cite_key(rng));
            b.close().expect("cite");
        }
    }
    b.close().expect("record");
}

/// Year skew matching Table 1: eighties dominate, nineties second,
/// seventies tail.
fn sample_year(rng: &mut StdRng) -> i32 {
    let roll = rng.random_range(0..100);
    let decade = if roll < 62 {
        1980
    } else if roll < 81 {
        1990
    } else if roll < 95 {
        1970
    } else {
        1960
    };
    decade + rng.random_range(0..10)
}

/// `conf/...` (~63%), `journals/...` (~36%), `books/...` remainder —
/// the prefix mix of Table 1 (13,609 conf vs 7,834 journal of 33k cites;
/// the rest of the cites in DBLP are empty "..." placeholders, which we
/// skip, so our two prefixes split the mass ~63/36).
fn cite_key(rng: &mut StdRng) -> String {
    const VENUES: &[&str] = &[
        "vldb", "sigmod", "icde", "edbt", "pods", "tods", "vldbj", "tkde",
    ];
    let venue = VENUES[rng.random_range(0..VENUES.len())];
    let roll = rng.random_range(0..100);
    let prefix = if roll < 63 {
        "conf"
    } else if roll < 99 {
        "journals"
    } else {
        "books"
    };
    format!("{prefix}/{venue}/{}", rng.random_range(0..10000))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlest_xml::stats::{tag_has_no_overlap, TreeStats};

    fn small() -> XmlTree {
        generate(&DblpOptions {
            seed: 11,
            records: 1_000,
        })
    }

    #[test]
    fn deterministic() {
        let a = generate(&DblpOptions {
            seed: 3,
            records: 100,
        });
        let b = generate(&DblpOptions {
            seed: 3,
            records: 100,
        });
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn record_mix_matches_table1_shape() {
        let t = small();
        let s = TreeStats::compute(&t);
        let articles = s.tag_counts["article"];
        let inproc = s.tag_counts["inproceedings"];
        let books = s.tag_counts.get("book").copied().unwrap_or(0);
        // Articles and inproceedings dominate; books are rare but present.
        assert!(
            articles > 250 && inproc > 350,
            "{articles} articles, {inproc} inproc"
        );
        assert!(books > 0 && books < 60, "{books} books");
        // Roughly 2 authors per record.
        let authors = s.tag_counts["author"];
        assert!(authors > 1_500 && authors < 3_000, "{authors} authors");
        // title/year on every record.
        assert_eq!(s.tag_counts["title"], 1_000);
        assert_eq!(s.tag_counts["year"], 1_000);
        // cdrom rare.
        let cdrom = s.tag_counts.get("cdrom").copied().unwrap_or(0);
        assert!(cdrom > 30 && cdrom < 200, "{cdrom} cdroms");
    }

    #[test]
    fn all_record_tags_are_no_overlap() {
        let t = small();
        for tag_name in [
            "article", "book", "author", "cite", "title", "url", "year", "cdrom",
        ] {
            if let Some(tag) = t.tags().get(tag_name) {
                assert!(tag_has_no_overlap(&t, tag), "{tag_name} should not nest");
            }
        }
    }

    #[test]
    fn year_distribution_skews_to_eighties() {
        let t = small();
        let mut eighties = 0;
        let mut nineties = 0;
        for n in t.iter() {
            if let Some(text) = t.text(n) {
                if let Ok(y) = text.parse::<i32>() {
                    if (1980..1990).contains(&y) {
                        eighties += 1;
                    } else if (1990..2000).contains(&y) {
                        nineties += 1;
                    }
                }
            }
        }
        assert!(eighties > 2 * nineties, "{eighties} vs {nineties}");
    }

    #[test]
    fn cite_prefixes_split_conf_majority() {
        let t = small();
        let mut conf = 0;
        let mut journals = 0;
        for n in t.iter() {
            if let Some(text) = t.text(n) {
                if text.starts_with("conf/") {
                    conf += 1;
                } else if text.starts_with("journals/") {
                    journals += 1;
                }
            }
        }
        assert!(conf > journals, "{conf} conf vs {journals} journals");
        assert!(journals > 0);
    }

    #[test]
    fn flat_structure_depth() {
        let t = small();
        let s = TreeStats::compute(&t);
        // dblp(0) -> record(1) -> field(2) -> text(3).
        assert_eq!(s.max_depth, 3);
    }
}
