//! Seeded synthetic data generators.
//!
//! The paper evaluates on DBLP, XMark, the Shakespeare plays and an
//! IBM-XML-generator synthetic data set. None of those inputs ship with
//! this reproduction, so each has a deterministic stand-in that preserves
//! the properties the estimator is sensitive to (see DESIGN.md §2 for the
//! substitution argument):
//!
//! * [`dblp`] — flat bibliography records with realistic tag frequencies,
//!   year distributions and `conf/`-`journals/` cite keys (Tables 1–2);
//! * [`dept`] — the exact `manager/department/employee` DTD of Section
//!   5.2, expanded by the generic [`dtdgen`] engine (Tables 3–4): deep
//!   recursion, overlap and no-overlap tags side by side;
//! * [`xmark`] / [`shakespeare`] — auxiliary workloads ("results were
//!   substantially similar");
//! * [`example`] — the Fig. 1 running-example document.
//!
//! All generators take a seed and are bit-for-bit reproducible.

pub mod dblp;
pub mod dept;
pub mod dtdgen;
pub mod example;
pub mod shakespeare;
pub mod words;
pub mod xmark;
