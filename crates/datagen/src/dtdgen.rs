//! DTD-driven random document generation — our stand-in for the IBM XML
//! Generator the paper used (Section 5.2).
//!
//! Given a parsed [`Dtd`], the generator expands a root element by
//! recursively sampling its content model: sequences expand in order,
//! choices uniformly, `?`/`*`/`+` with geometric repetition. Recursion is
//! tamed the way grammar-based fuzzers do it: a fixpoint computes every
//! element's minimal termination height, and once the depth budget is
//! exhausted choices pick the alternative with the smallest termination
//! height and quantifiers emit their minimum counts.

use crate::words;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use xmlest_xml::dtd::{ContentModel, ContentParticle, Dtd, Quantifier};
use xmlest_xml::{TreeBuilder, XmlTree};

/// Particle kinds re-exported locally for matching.
use xmlest_xml::dtd::content::ParticleKind;

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct DtdGenOptions {
    pub seed: u64,
    /// Depth at which expansion switches to shortest-termination mode.
    pub max_depth: usize,
    /// Continuation probability for `*` / `+` repetition.
    pub repeat_p: f64,
    /// Hard cap on repetitions of one particle.
    pub max_repeat: usize,
    /// Soft cap on total nodes: once exceeded, expansion terminates as
    /// fast as the grammar allows.
    pub target_nodes: usize,
    /// While below the node target, probability of steering a choice
    /// toward its most recursive alternative. Keeps expansion
    /// supercritical so documents reliably reach the target instead of
    /// dying out (branching processes are extinction-prone).
    pub grow_bias: f64,
    /// Relative selection weights for named choice alternatives
    /// (default 1.0). Lets callers shape tag mixes, e.g. keep `manager`
    /// recursion alive in the paper's DTD where only managers can spawn
    /// managers.
    pub choice_weights: std::collections::BTreeMap<String, f64>,
}

impl Default for DtdGenOptions {
    fn default() -> Self {
        DtdGenOptions {
            seed: 42,
            max_depth: 8,
            repeat_p: 0.55,
            max_repeat: 6,
            target_nodes: 5_000,
            grow_bias: 0.5,
            choice_weights: std::collections::BTreeMap::new(),
        }
    }
}

/// Generates a document tree from `dtd` rooted at element `root`.
///
/// Random grammar expansion is a branching process and can go extinct
/// long before the node target even when supercritical on average; the
/// generator deterministically reseeds (up to 64 attempts, derived from
/// `opts.seed`) and returns the first expansion reaching half the target,
/// falling back to the largest attempt for grammars that cannot grow.
///
/// # Panics
/// Panics if `root` is not declared in the DTD.
pub fn generate(dtd: &Dtd, root: &str, opts: &DtdGenOptions) -> XmlTree {
    assert!(
        dtd.element(root).is_some(),
        "root element {root:?} not declared"
    );
    let term = termination_heights(dtd);
    let mut best: Option<XmlTree> = None;
    for attempt in 0u64..64 {
        let seed = opts
            .seed
            .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = TreeBuilder::new();
        let mut gen = Generator {
            dtd,
            term: &term,
            opts,
            rng: &mut rng,
            nodes: 0,
        };
        gen.element(&mut b, root, 0, opts.target_nodes.max(8));
        let tree = b.finish().expect("generator produces balanced trees");
        if tree.len() * 2 >= opts.target_nodes {
            return tree;
        }
        if best.as_ref().is_none_or(|t| t.len() < tree.len()) {
            best = Some(tree);
        }
    }
    best.expect("at least one attempt ran")
}

/// Minimal subtree height required to terminate each element, via
/// fixpoint iteration (elements that can never terminate — mutually
/// mandatory recursion — keep `usize::MAX` and are avoided entirely once
/// the budget runs out; a DTD made solely of such elements would loop,
/// which we guard with an assert).
pub fn termination_heights(dtd: &Dtd) -> BTreeMap<String, usize> {
    let mut h: BTreeMap<String, usize> = dtd
        .elements
        .keys()
        .map(|k| (k.clone(), usize::MAX))
        .collect();
    loop {
        let mut changed = false;
        for (name, model) in &dtd.elements {
            let nh = match model {
                ContentModel::Empty | ContentModel::PcData | ContentModel::Mixed(_) => 1,
                // ANY can always terminate by emitting no children.
                ContentModel::Any => 1,
                ContentModel::Children(p) => particle_height(p, &h).saturating_add(1),
            };
            if nh < h[name] {
                h.insert(name.clone(), nh);
                changed = true;
            }
        }
        if !changed {
            return h;
        }
    }
}

fn particle_height(p: &ContentParticle, h: &BTreeMap<String, usize>) -> usize {
    if p.quant.min() == 0 {
        return 0;
    }
    match &p.kind {
        ParticleKind::Name(n) => h.get(n).copied().unwrap_or(1),
        ParticleKind::Seq(parts) => parts
            .iter()
            .map(|part| particle_height(part, h))
            .fold(0usize, |a, b| a.max(b)),
        ParticleKind::Choice(parts) => parts
            .iter()
            .map(|part| particle_height(part, h))
            .min()
            .unwrap_or(0),
    }
}

struct Generator<'a> {
    dtd: &'a Dtd,
    term: &'a BTreeMap<String, usize>,
    opts: &'a DtdGenOptions,
    rng: &'a mut StdRng,
    nodes: usize,
}

impl Generator<'_> {
    /// True once expansion should wind down as quickly as possible.
    fn must_terminate(&self, depth: usize, budget: usize) -> bool {
        depth >= self.opts.max_depth || budget <= 2 || self.nodes >= self.opts.target_nodes
    }

    /// Expands one element with a node budget for its whole subtree.
    ///
    /// Budgeting is what keeps tag mixes stable: the element first
    /// *samples* its list of child elements from the content model, then
    /// splits the remaining budget evenly among them, so an early
    /// explosive subtree cannot starve its later siblings (a plain DFS
    /// expansion exhausts the global target inside the first recursive
    /// child and skews the mix arbitrarily).
    fn element(&mut self, b: &mut TreeBuilder, name: &str, depth: usize, budget: usize) {
        self.nodes += 1;
        b.open(name);
        let mut child_elems: Vec<String> = Vec::new();
        match self.dtd.element(name) {
            None | Some(ContentModel::Empty) => {}
            Some(ContentModel::Any) => {
                if !self.must_terminate(depth, budget) {
                    let names: Vec<&String> = self.dtd.elements.keys().collect();
                    let k = self
                        .rng
                        .random_range(0..3usize)
                        .min(budget.saturating_sub(1));
                    for _ in 0..k {
                        child_elems.push(names[self.rng.random_range(0..names.len())].clone());
                    }
                }
            }
            Some(ContentModel::PcData) => {
                self.nodes += 1;
                let n_words = 1 + self.rng.random_range(0..3);
                let text = words::title(self.rng, n_words);
                b.text(&text);
            }
            Some(ContentModel::Mixed(names)) => {
                self.nodes += 1;
                b.text(words::zipf_word(self.rng));
                if !self.must_terminate(depth, budget) && !names.is_empty() {
                    let k = self.rng.random_range(0..2usize);
                    for _ in 0..k {
                        child_elems.push(names[self.rng.random_range(0..names.len())].clone());
                    }
                }
            }
            Some(ContentModel::Children(p)) => {
                let p = p.clone();
                self.sample_particle(&p, depth, budget, &mut child_elems);
            }
        }
        if !child_elems.is_empty() {
            // Leaf-ish children (small termination height) only need their
            // minimal size; the rest of the budget goes to recursive
            // children so the document actually reaches its target.
            let min_size = |name: &str| self.term.get(name).copied().unwrap_or(1).saturating_mul(2);
            let total_min: usize = child_elems.iter().map(|c| min_size(c)).sum();
            let recursive: usize = child_elems
                .iter()
                .filter(|c| self.term.get(c.as_str()).copied().unwrap_or(1) >= 3)
                .count();
            let extra = budget.saturating_sub(1).saturating_sub(total_min);
            let extra_share = extra.checked_div(recursive).unwrap_or(0);
            for child in child_elems {
                let mut share = min_size(&child);
                if self.term.get(child.as_str()).copied().unwrap_or(1) >= 3 {
                    share += extra_share;
                }
                self.element(b, &child, depth + 1, share.max(1));
            }
        }
        b.close().expect("element was opened above");
    }

    /// Samples the child-element sequence implied by a content particle
    /// without expanding it, so the budget can be split afterwards.
    fn sample_particle(
        &mut self,
        p: &ContentParticle,
        depth: usize,
        budget: usize,
        out: &mut Vec<String>,
    ) {
        // Terminate when the budget can no longer cover what has already
        // been sampled (each child needs at least one node).
        let terminate = self.must_terminate(depth, budget.saturating_sub(out.len()));
        let reps = self.sample_reps(p.quant, terminate);
        for _ in 0..reps {
            match &p.kind {
                ParticleKind::Name(n) => out.push(n.clone()),
                ParticleKind::Seq(parts) => {
                    for part in parts {
                        self.sample_particle(part, depth, budget, out);
                    }
                }
                ParticleKind::Choice(parts) => {
                    let pick = if terminate {
                        parts
                            .iter()
                            .min_by_key(|part| particle_height_one(part, self.term))
                            .expect("choice is non-empty")
                    } else {
                        self.pick_weighted(parts)
                    };
                    let pick = pick.clone();
                    self.sample_particle(&pick, depth, budget, out);
                }
            }
        }
    }

    /// Weighted choice: caller-provided per-name weights times a growth
    /// multiplier (derived from `grow_bias`) on the most recursive
    /// alternatives while the document is still below its node target.
    fn pick_weighted<'p>(&mut self, parts: &'p [ContentParticle]) -> &'p ContentParticle {
        let heights: Vec<usize> = parts
            .iter()
            .map(|part| particle_height_one(part, self.term))
            .collect();
        let max_h = heights.iter().copied().max().expect("choice is non-empty");
        let growing = self.nodes < self.opts.target_nodes;
        let grow_mult = 1.0 + 3.0 * self.opts.grow_bias;
        let weights: Vec<f64> = parts
            .iter()
            .zip(&heights)
            .map(|(part, &h)| {
                let base = match &part.kind {
                    ParticleKind::Name(n) => {
                        self.opts.choice_weights.get(n).copied().unwrap_or(1.0)
                    }
                    _ => 1.0,
                };
                let grow = if growing && h == max_h {
                    grow_mult
                } else {
                    1.0
                };
                base * grow
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut roll = self.rng.random_range(0.0..total);
        for (part, w) in parts.iter().zip(&weights) {
            if roll < *w {
                return part;
            }
            roll -= w;
        }
        parts.last().expect("choice is non-empty")
    }

    fn sample_reps(&mut self, q: Quantifier, terminate: bool) -> usize {
        if terminate {
            return q.min();
        }
        // Far below the node target, boost repetition to keep the
        // branching process supercritical.
        let p = if self.nodes * 2 < self.opts.target_nodes {
            (self.opts.repeat_p + 0.2).min(0.85)
        } else {
            self.opts.repeat_p
        };
        match q {
            Quantifier::One => 1,
            Quantifier::Opt => usize::from(self.rng.random_bool(0.5)),
            Quantifier::Star => words::geometric(self.rng, 0, p, self.opts.max_repeat),
            Quantifier::Plus => words::geometric(self.rng, 1, p, self.opts.max_repeat),
        }
    }
}

/// Height of a particle counting *one* mandatory pass (used to rank
/// choice alternatives at the depth limit).
fn particle_height_one(p: &ContentParticle, h: &BTreeMap<String, usize>) -> usize {
    match &p.kind {
        ParticleKind::Name(n) => h.get(n).copied().unwrap_or(1),
        ParticleKind::Seq(parts) => parts
            .iter()
            .filter(|part| part.quant.min() > 0)
            .map(|part| particle_height_one(part, h))
            .fold(0usize, |a, b| a.max(b)),
        ParticleKind::Choice(parts) => parts
            .iter()
            .map(|part| particle_height_one(part, h))
            .min()
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlest_xml::dtd::parser::{parse_dtd, PAPER_SYNTHETIC_DTD};
    use xmlest_xml::stats::TreeStats;

    #[test]
    fn termination_heights_for_paper_dtd() {
        let dtd = parse_dtd(PAPER_SYNTHETIC_DTD).unwrap();
        let h = termination_heights(&dtd);
        assert_eq!(h["name"], 1);
        assert_eq!(h["email"], 1);
        // employee = (name+, email?) -> 1 + height(name) = 2.
        assert_eq!(h["employee"], 2);
        // department needs name and employee+ -> 1 + 2 = 3.
        assert_eq!(h["department"], 3);
        // manager = (name, (m|d|e)+) -> cheapest alternative employee -> 3.
        assert_eq!(h["manager"], 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let dtd = parse_dtd(PAPER_SYNTHETIC_DTD).unwrap();
        let opts = DtdGenOptions {
            seed: 123,
            ..Default::default()
        };
        let a = generate(&dtd, "manager", &opts);
        let b = generate(&dtd, "manager", &opts);
        assert_eq!(a.len(), b.len());
        let sa: Vec<_> = a.iter().map(|n| (a.tag(n), a.interval(n))).collect();
        let sb: Vec<_> = b.iter().map(|n| (b.tag(n), b.interval(n))).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_differ() {
        let dtd = parse_dtd(PAPER_SYNTHETIC_DTD).unwrap();
        let a = generate(
            &dtd,
            "manager",
            &DtdGenOptions {
                seed: 1,
                ..Default::default()
            },
        );
        let b = generate(
            &dtd,
            "manager",
            &DtdGenOptions {
                seed: 2,
                ..Default::default()
            },
        );
        assert_ne!(a.len(), b.len());
    }

    #[test]
    fn respects_target_nodes_softly() {
        let dtd = parse_dtd(PAPER_SYNTHETIC_DTD).unwrap();
        let opts = DtdGenOptions {
            seed: 5,
            target_nodes: 500,
            max_depth: 30,
            ..Default::default()
        };
        let t = generate(&dtd, "manager", &opts);
        // Soft cap: must stop reasonably close past the target.
        assert!(t.len() >= 100, "got {}", t.len());
        assert!(t.len() < 5 * 500, "got {}", t.len());
    }

    #[test]
    fn produces_valid_paper_shape() {
        let dtd = parse_dtd(PAPER_SYNTHETIC_DTD).unwrap();
        let opts = DtdGenOptions {
            seed: 7,
            target_nodes: 2000,
            max_depth: 10,
            ..Default::default()
        };
        let t = generate(&dtd, "manager", &opts);
        let stats = TreeStats::compute(&t);
        // All five element kinds appear.
        for tag in ["manager", "department", "employee", "name", "email"] {
            assert!(
                stats.tag_counts.get(tag).copied().unwrap_or(0) > 0,
                "missing {tag}"
            );
        }
        // Recursion actually happens: manager or department nests.
        assert!(stats.max_depth >= 4, "max depth {}", stats.max_depth);
        // Structural sanity: every employee's children are names/emails.
        let employee = t.tags().get("employee").unwrap();
        for n in t.iter() {
            if t.tag(n) == Some(employee) {
                for c in t.children(n) {
                    let tag = t.tag_name(c).unwrap();
                    assert!(tag == "name" || tag == "email", "employee child {tag}");
                }
            }
        }
    }

    #[test]
    fn depth_limit_terminates_mandatory_recursion_free_grammars() {
        // Grammar with a tempting recursion that must still terminate.
        let dtd = parse_dtd("<!ELEMENT a (a|b)><!ELEMENT b (#PCDATA)>").unwrap();
        let opts = DtdGenOptions {
            seed: 3,
            max_depth: 4,
            target_nodes: 100,
            ..Default::default()
        };
        let t = generate(&dtd, "a", &opts);
        assert!(t.len() < 10_000);
        let stats = TreeStats::compute(&t);
        assert!(stats.max_depth < 64);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn unknown_root_panics() {
        let dtd = parse_dtd("<!ELEMENT a EMPTY>").unwrap();
        generate(&dtd, "zzz", &DtdGenOptions::default());
    }
}
