//! A Shakespeare-plays-style generator (the ibiblio data set the paper
//! cites). Regular, shallow, text-heavy: plays with acts, scenes,
//! speeches, speakers and lines — a workload where almost every tag is
//! no-overlap and text nodes dominate.

use crate::words;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xmlest_xml::{TreeBuilder, XmlTree};

#[derive(Debug, Clone)]
pub struct ShakespeareOptions {
    pub seed: u64,
    /// Number of plays in the corpus (merged under one root).
    pub plays: usize,
}

impl Default for ShakespeareOptions {
    fn default() -> Self {
        ShakespeareOptions { seed: 42, plays: 2 }
    }
}

/// Generates the corpus: `<corpus>` wrapping `plays` `<PLAY>` subtrees.
pub fn generate(opts: &ShakespeareOptions) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut b = TreeBuilder::new();
    b.open("corpus");
    for _ in 0..opts.plays {
        emit_play(&mut b, &mut rng);
    }
    b.close().expect("corpus");
    b.finish().expect("balanced")
}

fn emit_play(b: &mut TreeBuilder, rng: &mut StdRng) {
    b.open("PLAY");
    b.open("TITLE");
    b.text(&format!("The Tragedy of {}", words::person_name(rng)));
    b.close().expect("TITLE");

    // Dramatis personae.
    b.open("PERSONAE");
    let cast: Vec<String> = (0..6 + rng.random_range(0..8))
        .map(|_| words::person_name(rng).to_uppercase())
        .collect();
    for name in &cast {
        b.open("PERSONA");
        b.text(name);
        b.close().expect("PERSONA");
    }
    b.close().expect("PERSONAE");

    let acts = 3 + rng.random_range(0..3);
    for a in 1..=acts {
        b.open("ACT");
        b.open("TITLE");
        b.text(&format!("ACT {a}"));
        b.close().expect("TITLE");
        let scenes = 2 + rng.random_range(0..5);
        for s in 1..=scenes {
            b.open("SCENE");
            b.open("TITLE");
            b.text(&format!("SCENE {s}"));
            b.close().expect("TITLE");
            let speeches = 5 + rng.random_range(0..20);
            for _ in 0..speeches {
                b.open("SPEECH");
                b.open("SPEAKER");
                b.text(&cast[rng.random_range(0..cast.len())]);
                b.close().expect("SPEAKER");
                let lines = 1 + rng.random_range(0..6);
                for _ in 0..lines {
                    b.open("LINE");
                    let n_words = 5 + rng.random_range(0..5);
                    b.text(&words::title(rng, n_words));
                    b.close().expect("LINE");
                }
                b.close().expect("SPEECH");
            }
            b.close().expect("SCENE");
        }
        b.close().expect("ACT");
    }
    b.close().expect("PLAY");
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlest_xml::stats::{tag_has_no_overlap, TreeStats};

    #[test]
    fn corpus_structure() {
        let t = generate(&ShakespeareOptions::default());
        let s = TreeStats::compute(&t);
        assert_eq!(s.tag_counts["PLAY"], 2);
        assert!(s.tag_counts["ACT"] >= 6);
        assert!(s.tag_counts["SPEECH"] > 50);
        assert!(s.tag_counts["LINE"] >= s.tag_counts["SPEECH"]);
        assert_eq!(s.max_depth, 6); // corpus/PLAY/ACT/SCENE/SPEECH/LINE/text
    }

    #[test]
    fn every_structural_tag_is_no_overlap() {
        let t = generate(&ShakespeareOptions::default());
        for name in ["PLAY", "ACT", "SCENE", "SPEECH", "SPEAKER", "LINE"] {
            let tag = t.tags().get(name).unwrap();
            assert!(tag_has_no_overlap(&t, tag), "{name}");
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&ShakespeareOptions::default());
        let b = generate(&ShakespeareOptions::default());
        assert_eq!(a.len(), b.len());
    }
}
