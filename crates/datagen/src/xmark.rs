//! A simplified XMark-style auction-site generator (the paper lists the
//! XMark benchmark among its data sets). Keeps XMark's signature
//! structure: a `site` with regions/items, people, and open auctions
//! whose `description` text can nest `parlist`/`listitem` recursively —
//! providing an *overlapping* tag (`listitem`) in an otherwise flat
//! catalog, unlike the DBLP workload.

use crate::words;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xmlest_xml::{TreeBuilder, XmlTree};

#[derive(Debug, Clone)]
pub struct XmarkOptions {
    pub seed: u64,
    /// Number of items across all regions.
    pub items: usize,
    /// Number of registered people.
    pub people: usize,
    /// Number of open auctions.
    pub auctions: usize,
}

impl Default for XmarkOptions {
    fn default() -> Self {
        XmarkOptions {
            seed: 42,
            items: 200,
            people: 120,
            auctions: 80,
        }
    }
}

const REGIONS: &[&str] = &[
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

/// Generates the auction site document.
pub fn generate(opts: &XmarkOptions) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut b = TreeBuilder::new();
    b.open("site");

    b.open("regions");
    for (ridx, region) in REGIONS.iter().enumerate() {
        b.open(region);
        // Distribute items round-robin-ish across regions.
        let share = opts.items / REGIONS.len() + usize::from(ridx < opts.items % REGIONS.len());
        for i in 0..share {
            emit_item(&mut b, &mut rng, ridx * 10_000 + i);
        }
        b.close().expect("region");
    }
    b.close().expect("regions");

    b.open("people");
    for i in 0..opts.people {
        emit_person(&mut b, &mut rng, i);
    }
    b.close().expect("people");

    b.open("open_auctions");
    for i in 0..opts.auctions {
        emit_auction(&mut b, &mut rng, i, opts.people);
    }
    b.close().expect("open_auctions");

    b.close().expect("site");
    b.finish().expect("balanced")
}

fn emit_item(b: &mut TreeBuilder, rng: &mut StdRng, id: usize) {
    b.open("item");
    b.attr("id", &format!("item{id}")).expect("open element");
    b.open("name");
    b.text(&words::title(rng, 2));
    b.close().expect("name");
    b.open("description");
    emit_text_block(b, rng, 0);
    b.close().expect("description");
    if rng.random_bool(0.6) {
        b.open("payment");
        b.text("Creditcard");
        b.close().expect("payment");
    }
    b.open("quantity");
    b.text(&rng.random_range(1..10).to_string());
    b.close().expect("quantity");
    b.close().expect("item");
}

/// Recursive parlist/listitem description text — XMark's nested part.
fn emit_text_block(b: &mut TreeBuilder, rng: &mut StdRng, depth: usize) {
    if depth < 3 && rng.random_bool(0.4) {
        b.open("parlist");
        let n = 1 + rng.random_range(0..3);
        for _ in 0..n {
            b.open("listitem");
            emit_text_block(b, rng, depth + 1);
            b.close().expect("listitem");
        }
        b.close().expect("parlist");
    } else {
        b.open("text");
        let n_words = 3 + rng.random_range(0..8);
        b.text(&words::title(rng, n_words));
        b.close().expect("text");
    }
}

fn emit_person(b: &mut TreeBuilder, rng: &mut StdRng, id: usize) {
    b.open("person");
    b.attr("id", &format!("person{id}")).expect("open element");
    b.open("name");
    b.text(&words::person_name(rng));
    b.close().expect("name");
    b.open("emailaddress");
    b.text(&format!("mailto:u{id}@example.org"));
    b.close().expect("email");
    if rng.random_bool(0.5) {
        b.open("phone");
        b.text(&format!("+1 555 {:07}", rng.random_range(0..10_000_000)));
        b.close().expect("phone");
    }
    b.close().expect("person");
}

fn emit_auction(b: &mut TreeBuilder, rng: &mut StdRng, id: usize, people: usize) {
    b.open("open_auction");
    b.attr("id", &format!("auction{id}")).expect("open element");
    let bidders = rng.random_range(0..6);
    for _ in 0..bidders {
        b.open("bidder");
        b.open("date");
        b.text(&format!(
            "{:02}/{:02}/2001",
            rng.random_range(1..13),
            rng.random_range(1..29)
        ));
        b.close().expect("date");
        b.open("increase");
        b.text(&format!("{}.00", rng.random_range(1..50)));
        b.close().expect("increase");
        b.open("personref");
        b.attr(
            "person",
            &format!("person{}", rng.random_range(0..people.max(1))),
        )
        .expect("open element");
        b.close().expect("personref");
        b.close().expect("bidder");
    }
    b.open("current");
    b.text(&format!("{}.00", rng.random_range(10..500)));
    b.close().expect("current");
    b.close().expect("open_auction");
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlest_xml::stats::{tag_has_no_overlap, TreeStats};

    #[test]
    fn shape_and_counts() {
        let t = generate(&XmarkOptions::default());
        let s = TreeStats::compute(&t);
        assert_eq!(s.tag_counts["item"], 200);
        assert_eq!(s.tag_counts["person"], 120);
        assert_eq!(s.tag_counts["open_auction"], 80);
        assert_eq!(s.tag_counts["site"], 1);
        for r in REGIONS {
            assert!(s.tag_counts.contains_key(*r), "missing region {r}");
        }
    }

    #[test]
    fn listitem_overlaps_but_item_does_not() {
        let t = generate(&XmarkOptions {
            seed: 9,
            ..Default::default()
        });
        let item = t.tags().get("item").unwrap();
        assert!(tag_has_no_overlap(&t, item));
        // listitem nests through parlist recursion (with enough data the
        // 40% recursion probability guarantees nesting).
        let listitem = t.tags().get("listitem").unwrap();
        assert!(!tag_has_no_overlap(&t, listitem));
    }

    #[test]
    fn deterministic() {
        let a = generate(&XmarkOptions::default());
        let b = generate(&XmarkOptions::default());
        assert_eq!(a.len(), b.len());
    }
}
