//! Shared word/text generation helpers for the data generators.

use rand::rngs::StdRng;
use rand::RngExt;

/// A small vocabulary for titles, names and prose.
pub const VOCAB: &[&str] = &[
    "query",
    "index",
    "xml",
    "tree",
    "join",
    "cost",
    "plan",
    "data",
    "graph",
    "cache",
    "storage",
    "stream",
    "schema",
    "pattern",
    "search",
    "merge",
    "range",
    "vector",
    "parallel",
    "optimal",
    "adaptive",
    "estimate",
    "histogram",
    "selectivity",
    "twig",
    "path",
    "node",
    "label",
    "interval",
    "position",
    "answer",
    "size",
    "database",
];

/// Picks a vocabulary word with a Zipf-ish skew (lower indexes much more
/// likely), mirroring real text-value skew.
pub fn zipf_word(rng: &mut StdRng) -> &'static str {
    let n = VOCAB.len();
    // Sample rank via inverse-power transform.
    let u: f64 = rng.random_range(0.0..1.0);
    let rank = ((n as f64).powf(u) - 1.0) as usize;
    VOCAB[rank.min(n - 1)]
}

/// A title of `words` Zipf-distributed words.
pub fn title(rng: &mut StdRng, words: usize) -> String {
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(zipf_word(rng));
    }
    out
}

/// A surname-like token, uniform over a fixed pool with a numeric suffix
/// so author predicates have both frequent and rare values.
pub fn person_name(rng: &mut StdRng) -> String {
    const SURNAMES: &[&str] = &[
        "Smith", "Chen", "Garcia", "Patel", "Kim", "Muller", "Rossi", "Tanaka", "Olsen", "Kumar",
        "Silva", "Novak", "Dubois", "Haile", "Okafor", "Larsen",
    ];
    let surname = SURNAMES[rng.random_range(0..SURNAMES.len())];
    // 1 in 4 names carry a disambiguating number (rare values).
    if rng.random_range(0..4) == 0 {
        format!("{surname} {:04}", rng.random_range(0..10000))
    } else {
        surname.to_owned()
    }
}

/// Samples a count for a `*` / `+` content particle: geometric decay with
/// the given continuation probability, capped.
pub fn geometric(rng: &mut StdRng, min: usize, cont_p: f64, cap: usize) -> usize {
    let mut k = min;
    while k < cap && rng.random_bool(cont_p) {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(zipf_word(&mut a), zipf_word(&mut b));
            assert_eq!(person_name(&mut a), person_name(&mut b));
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut first = 0;
        const N: usize = 5000;
        for _ in 0..N {
            if zipf_word(&mut rng) == VOCAB[0] {
                first += 1;
            }
        }
        // The top word should be far above uniform (1/34 ~ 3%).
        assert!(first > N / 10, "top word frequency {first}/{N}");
    }

    #[test]
    fn geometric_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let k = geometric(&mut rng, 1, 0.6, 5);
            assert!((1..=5).contains(&k));
        }
        assert_eq!(geometric(&mut rng, 2, 0.0, 9), 2);
        assert_eq!(geometric(&mut rng, 0, 1.0, 3), 3);
    }

    #[test]
    fn title_word_count() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = title(&mut rng, 4);
        assert_eq!(t.split(' ').count(), 4);
    }
}
