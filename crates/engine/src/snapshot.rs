//! Epoch-stamped immutable serving snapshots and the RCU-style cell
//! that publishes them — the wait-free read side of the database.
//!
//! A [`Snapshot`] freezes everything an estimate derives from: the
//! merged [`Summaries`] (grid included), the shared coefficient cache,
//! and a frozen view of the prepared-query cache's path→twig map, all
//! behind `Arc`s so a successor snapshot reuses every component the
//! mutation did not replace (a stable append allocates only the delta —
//! the new merged summaries; the coefficient cache and twig map carry by
//! pointer).
//!
//! The [`SnapshotCell`] is the publication point: readers load the
//! current snapshot with one lock-free pointer load
//! ([`SnapshotCell::current`]) and run *entirely* against it — no lock,
//! no epoch re-check, no shared-state write. Mutations build the
//! successor off the read path and publish it by a single pointer swap
//! with a (strictly monotone) epoch bump; under `--features
//! strict-invariants` every publish re-validates the summaries and the
//! epoch monotonicity first, so a torn or regressed snapshot can never
//! become current.
//!
//! ## The read-vs-maintenance thread contract
//!
//! * **Readers** ([`Snapshot::estimate`] and friends) are wait-free:
//!   they never block on a mutation, and every value they return is
//!   computed against exactly one published epoch — bit-identical to a
//!   single-threaded replay of that epoch's database.
//! * **Writers** (the `&mut Database` mutation paths, typically driven
//!   by one [`crate::maintenance::MaintenanceWorker`] thread) serialize
//!   on the database's `&mut` receiver; the cell itself never blocks
//!   them on readers. An in-flight reader keeps its old snapshot alive
//!   through the `Arc` until it finishes — there is no grace period to
//!   wait out and no reader can ever observe a half-installed state.
//!
//! The element index and data tree are deliberately **not** part of a
//! snapshot: the estimate path never touches them (exact counting and
//! plan execution stay on the [`crate::db::Database`] itself).

use crate::error::Result;
use crate::telemetry::Metrics;
use std::collections::HashMap;
use std::sync::Arc;
use xmlest_core::{CoeffCache, Estimate, Estimator, Summaries, TwigNode, TwigWorkspace};
use xmlest_query::parse_path;
use xmlest_xobs::{Recorder, Stage};

/// A frozen path→canonical-twig view of the prepared cache, shared by
/// every snapshot published while the cache's path set is unchanged.
pub(crate) type FrozenTwigs = Arc<HashMap<String, Arc<TwigNode>>>;

/// One immutable, epoch-stamped serving state. Everything an estimate
/// reads lives behind this value; see the module docs for the contract.
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    degraded: bool,
    summaries: Arc<Summaries>,
    coeffs: Arc<CoeffCache>,
    twigs: FrozenTwigs,
    /// The owning database's observability handle: snapshots record
    /// kernel latency and serve counters into the same recorder the
    /// database and its services share, so telemetry is one view no
    /// matter which entry point served the estimate.
    obs: Recorder,
    metrics: Metrics,
}

impl Snapshot {
    pub(crate) fn new(
        epoch: u64,
        degraded: bool,
        summaries: Arc<Summaries>,
        coeffs: Arc<CoeffCache>,
        twigs: FrozenTwigs,
        obs: Recorder,
        metrics: Metrics,
    ) -> Snapshot {
        Snapshot {
            epoch,
            degraded,
            summaries,
            coeffs,
            twigs,
            obs,
            metrics,
        }
    }

    /// The observability recorder this snapshot records into — the same
    /// recorder as the owning database's, so counters and stage
    /// latencies recorded here appear in [`crate::Database::telemetry`].
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Engine metric handles (shared with the owning database).
    pub(crate) fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Counts one served estimate (and, when `!ok`, one error). Gated on
    /// the recorder's enabled flag so the `telemetry_overhead` bench's
    /// off-mode really is increment-free.
    #[inline]
    fn note(&self, ok: bool) {
        if self.obs.enabled() {
            self.metrics.estimates.inc();
            if !ok {
                self.metrics.estimate_errors.inc();
            }
        }
    }

    /// The database epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the database was serving degraded (quarantined
    /// documents estimate as absent) when this snapshot was published.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The merged summaries this snapshot estimates from.
    pub fn summaries(&self) -> &Summaries {
        &self.summaries
    }

    /// The summaries generation ([`Summaries::generation`]) — what the
    /// coefficient tables bind to.
    pub fn generation(&self) -> u64 {
        self.summaries.generation()
    }

    /// An estimator over this snapshot, wired to its coefficient cache.
    pub fn estimator(&self) -> Estimator<'_> {
        self.summaries.estimator().with_cache(&self.coeffs)
    }

    /// Resolves a path to its canonical twig: a hit on the frozen
    /// prepared view skips the parser entirely; a miss parses and
    /// canonicalizes — either way the estimate runs on the canonical
    /// ordering, so the two are bit-identical.
    fn resolve(&self, path: &str) -> Result<Arc<TwigNode>> {
        if let Some(twig) = self.twigs.get(path) {
            return Ok(twig.clone());
        }
        Ok(Arc::new(parse_path(path)?.canonicalize()))
    }

    /// Estimates a path query against this snapshot (thread-local
    /// workspace). Wait-free with respect to concurrent mutations: the
    /// whole computation reads this snapshot only.
    pub fn estimate(&self, path: &str) -> Result<Estimate> {
        let mut ws = TwigWorkspace::default();
        self.estimate_with(&mut ws, path)
    }

    /// [`Snapshot::estimate`] on a caller-owned workspace — the
    /// zero-allocation steady state for serving loops.
    pub fn estimate_with(&self, ws: &mut TwigWorkspace, path: &str) -> Result<Estimate> {
        let res = (|| -> Result<Estimate> {
            let twig = self.resolve(path)?;
            // Sampled: per-op kernel timing at full cadence costs two
            // clock reads on a sub-microsecond warm path.
            let span = self.obs.span_sampled(Stage::Kernel);
            let out = self.estimator().estimate_twig_with(ws, &twig);
            drop(span);
            Ok(out?)
        })();
        self.note(res.is_ok());
        res
    }

    /// Estimates a pre-parsed twig on a caller-owned workspace. The twig
    /// is evaluated as given (no canonicalization) — canonicalize first
    /// for bit-stability against the path-string entry points.
    pub fn estimate_twig_with(&self, ws: &mut TwigWorkspace, twig: &TwigNode) -> Result<Estimate> {
        let span = self.obs.span_sampled(Stage::Kernel);
        let out = self.estimator().estimate_twig_with(ws, twig);
        drop(span);
        self.note(out.is_ok());
        Ok(out?)
    }

    /// Estimates a batch of paths, deduplicating repeated strings so
    /// each distinct path is resolved and estimated exactly once (the
    /// per-path results are bit-identical to [`Snapshot::estimate`]).
    /// Result order matches the batch; per-path errors come back in
    /// their own slot.
    pub fn estimate_batch(&self, paths: &[&str]) -> Vec<Result<Estimate>> {
        let mut ws = TwigWorkspace::default();
        self.estimate_batch_with(&mut ws, paths)
    }

    /// [`Snapshot::estimate_batch`] on a caller-owned workspace — what
    /// the admission-front workers run.
    pub fn estimate_batch_with(
        &self,
        ws: &mut TwigWorkspace,
        paths: &[&str],
    ) -> Vec<Result<Estimate>> {
        let mut distinct: Vec<&str> = Vec::new();
        let mut class_of: HashMap<&str, usize> = HashMap::with_capacity(paths.len());
        let slots: Vec<usize> = paths
            .iter()
            .map(|&p| {
                *class_of.entry(p).or_insert_with(|| {
                    distinct.push(p);
                    distinct.len() - 1
                })
            })
            .collect();
        let est = self.estimator();
        let results: Vec<Result<Estimate>> = distinct
            .iter()
            .map(|&p| {
                let twig = self.resolve(p)?;
                let span = self.obs.span_sampled(Stage::Kernel);
                let out = est.estimate_twig_with(ws, &twig);
                drop(span);
                Ok(out?)
            })
            .collect();
        if self.obs.enabled() {
            self.metrics.batches.inc();
            // Every slot is a served estimate, dedup or not — the
            // counter reads as request throughput, not kernel runs.
            self.metrics.estimates.add(paths.len() as u64);
            let errors = slots.iter().filter(|&&i| results[i].is_err()).count();
            if errors > 0 {
                self.metrics.estimate_errors.add(errors as u64);
            }
        }
        slots.into_iter().map(|i| results[i].clone()).collect()
    }

    /// Cross-structure consistency of the frozen summaries
    /// ([`Summaries::validate`]); run at every publish under
    /// `--features strict-invariants`.
    pub fn validate(&self) -> std::result::Result<(), String> {
        self.summaries.validate()
    }
}

/// The RCU-style publication cell: one atomically swappable pointer to
/// the current [`Snapshot`]. Reads are wait-free (hazard-pointer guarded
/// loads — see the `arc-swap` shim); publication is a single pointer
/// swap performed by the database's mutation paths.
#[derive(Debug)]
pub struct SnapshotCell {
    inner: arc_swap::ArcSwap<Snapshot>,
}

impl SnapshotCell {
    /// Wraps the database's first snapshot in a shareable cell.
    pub(crate) fn initial(snapshot: Snapshot) -> Arc<SnapshotCell> {
        Arc::new(SnapshotCell {
            inner: arc_swap::ArcSwap::from_pointee(snapshot),
        })
    }

    /// The current snapshot — one lock-free pointer load. The returned
    /// `Arc` keeps that snapshot alive (and every estimate run on it
    /// consistent) across any number of concurrent publications.
    pub fn current(&self) -> Arc<Snapshot> {
        self.inner.load_full()
    }

    /// Epoch of the current snapshot, without taking a full reference.
    pub fn epoch(&self) -> u64 {
        self.inner.load().epoch()
    }

    /// Publishes `next` as the current snapshot. Under `--features
    /// strict-invariants` the swap is gated on the published state
    /// validating and the epoch never going backwards.
    pub(crate) fn publish(&self, next: Snapshot) {
        let current = self.inner.load().epoch();
        xmlest_core::invariants::checkpoint("SnapshotCell::publish", || {
            if next.epoch() < current {
                return Err(format!(
                    "snapshot epoch went backwards: {current} -> {}",
                    next.epoch()
                ));
            }
            next.validate()
        });
        self.inner.store(Arc::new(next));
    }
}
