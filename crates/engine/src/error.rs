//! Engine error type: wraps the lower layers.

use std::fmt;

/// Any failure the engine can report: wraps the lower layers and adds
/// plan, missing-data, and serving-only conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An error from the summary/estimation layer.
    Core(xmlest_core::Error),
    /// A query-parse error.
    Query(xmlest_query::Error),
    /// An XML parse or tree error.
    Xml(xmlest_xml::Error),
    /// Plan construction/validation problems.
    Plan(String),
    /// The operation needs data this database does not carry (e.g.
    /// exact counting on a catalog-opened, serving-only database, or
    /// collection mutation on a single-document database).
    NoData(String),
    /// A mutation or refresh was attempted on a **serving-only**
    /// database — one opened from a persisted catalog, which carries
    /// summaries but no document sources to rebuild from. The database
    /// keeps serving estimates; re-ingest the documents (or
    /// `Database::repair` quarantined ones) to mutate.
    ServingOnly(String),
    /// A service-front failure: the maintenance worker or an admission
    /// queue is gone (its thread shut down or panicked), so the request
    /// cannot be served. Estimates against an already-held snapshot are
    /// unaffected.
    Service(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "estimator: {e}"),
            Error::Query(e) => write!(f, "query: {e}"),
            Error::Xml(e) => write!(f, "xml: {e}"),
            Error::Plan(msg) => write!(f, "plan: {msg}"),
            Error::NoData(msg) => write!(f, "no data: {msg}"),
            Error::ServingOnly(msg) => write!(f, "serving-only: {msg}"),
            Error::Service(msg) => write!(f, "service: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<xmlest_core::Error> for Error {
    fn from(e: xmlest_core::Error) -> Self {
        Error::Core(e)
    }
}

impl From<xmlest_query::Error> for Error {
    fn from(e: xmlest_query::Error) -> Self {
        Error::Query(e)
    }
}

impl From<xmlest_xml::Error> for Error {
    fn from(e: xmlest_xml::Error) -> Self {
        Error::Xml(e)
    }
}

/// Result alias over the engine [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = xmlest_core::Error::GridMismatch.into();
        assert!(e.to_string().contains("estimator"));
        let e: Error = xmlest_query::Error::UnknownPredicate("x".into()).into();
        assert!(e.to_string().contains("query"));
        let e = Error::Plan("disconnected".into());
        assert_eq!(e.to_string(), "plan: disconnected");
    }
}
