//! The unified telemetry surface: one coherent snapshot of everything
//! the engine knows about its own behavior, plus the estimate
//! provenance report.
//!
//! Before this module the engine's observability was four ad-hoc stats
//! structs ([`ServiceStats`], [`MaintenanceStats`], [`FrontStats`],
//! [`CacheStats`]) with no timing, no event history and inconsistent
//! reset semantics. [`Telemetry`] subsumes all four (they remain as
//! thin compatibility views — see [`Telemetry::service_stats`] etc.)
//! and adds the `xobs` registry counters, per-stage latency quantiles,
//! and the recent event journal, with two serde-free exporters:
//! Prometheus exposition text ([`Telemetry::to_prometheus`]) and
//! hand-rolled JSON ([`Telemetry::to_json`]), matching the repo's
//! hand-rolled persistence idiom.
//!
//! **Reset contract.** Everything counter-like in a [`Telemetry`]
//! (registry counters, cache hit/miss/eviction totals, stage histogram
//! counts, `events_total`) is **monotonic for the life of the
//! database** — nothing resets it; rate consumers diff successive
//! snapshots. Level gauges (cache population, drift, strike counts,
//! degraded flags, pooled workspaces) move in both directions;
//! [`MaintenanceStats`] documents which of its fields is which.
//!
//! [`TraceReport`] is the latency counterpart of the plan EXPLAIN:
//! [`crate::EstimationService::estimate_traced`] runs the pipeline
//! stage by stage (parse → canonicalize → prepare → plan → kernel) and
//! reports where the time went, which plan and per-edge kernels served
//! the estimate, and how the prepared cache was met.

use crate::cost::CostedPlan;
use crate::maintenance::MaintenanceStats;
use crate::prepared::{CacheStats, CacheTier, TwigId};
use crate::service::{FrontStats, ServiceStats};
use std::sync::Arc;
use xmlest_core::{Axis, Summaries, TwigNode};
use xmlest_predicate::PredExpr;
use xmlest_xobs::{Counter, CounterSample, Event, HistogramSnapshot, Recorder, Stage};

/// The engine's registered warm-path counters, created once per
/// database against its [`Recorder`]'s typed registry. Handles are
/// shared (sharded `Arc`s), so snapshots, fronts and services all
/// increment the same cells.
#[derive(Debug, Clone)]
pub(crate) struct Metrics {
    /// Estimates served through snapshots and services.
    pub(crate) estimates: Counter,
    /// Estimates that returned an error.
    pub(crate) estimate_errors: Counter,
    /// `estimate_batch*` calls.
    pub(crate) batches: Counter,
    /// Serving snapshots published.
    pub(crate) publishes: Counter,
    /// Requests admitted by an admission front.
    pub(crate) front_admitted: Counter,
    /// Batch calls those admissions coalesced into.
    pub(crate) front_batches: Counter,
    /// Admissions that rode an already-open batch.
    pub(crate) front_coalesced: Counter,
}

impl Metrics {
    /// Registers (or re-binds to) the engine metric set in `rec`.
    /// Registration is idempotent by name, so calling this twice
    /// against one recorder yields handles to the same cells.
    pub(crate) fn register(rec: &Recorder) -> Metrics {
        Metrics {
            estimates: rec.counter(
                "xmlest_estimates_total",
                "Estimates served through snapshots and estimation services.",
            ),
            estimate_errors: rec.counter(
                "xmlest_estimate_errors_total",
                "Estimate calls that returned an error.",
            ),
            batches: rec.counter(
                "xmlest_estimate_batches_total",
                "Batched estimate calls (each serving one or more paths).",
            ),
            publishes: rec.counter(
                "xmlest_snapshot_publishes_total",
                "Serving snapshots published at mutation commit points.",
            ),
            front_admitted: rec.counter(
                "xmlest_front_admitted_total",
                "Requests admitted by the admission front's bounded queue.",
            ),
            front_batches: rec.counter(
                "xmlest_front_batches_total",
                "Batch calls the admission front coalesced requests into.",
            ),
            front_coalesced: rec.counter(
                "xmlest_front_coalesced_total",
                "Admitted requests that rode an already-open batch.",
            ),
        }
    }
}

/// Folded latency of one pipeline stage, with log-bucket quantiles
/// (each reported value upper-bounds the true quantile; see the `xobs`
/// crate docs for the bucketing scheme).
#[derive(Debug, Clone)]
pub struct StageLatency {
    /// Stage name (`parse`, `canonicalize`, `prepare`, `plan`,
    /// `kernel`, `refresh`).
    pub stage: &'static str,
    /// Samples recorded.
    pub count: u64,
    /// Exact mean in nanoseconds.
    pub mean_ns: u64,
    /// Median upper bound in nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile upper bound in nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile upper bound in nanoseconds.
    pub p99_ns: u64,
    /// Upper bound on the largest sample in nanoseconds.
    pub max_ns: u64,
}

impl StageLatency {
    fn from_snapshot(stage: Stage, snap: &HistogramSnapshot) -> StageLatency {
        StageLatency {
            stage: stage.name(),
            count: snap.count(),
            mean_ns: snap.mean_ns(),
            p50_ns: snap.quantile_ns(0.50),
            p90_ns: snap.quantile_ns(0.90),
            p99_ns: snap.quantile_ns(0.99),
            max_ns: snap.max_ns(),
        }
    }
}

/// One coherent observability snapshot of a database (or the service
/// wrapping it): epoch, degradation, the four legacy stats views, the
/// registry counters, per-stage latency quantiles, and the recent
/// event journal. Built by [`crate::Database::telemetry`] /
/// [`crate::EstimationService::telemetry`].
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Current epoch (monotonic version of everything estimates derive
    /// from).
    pub epoch: u64,
    /// `store_degraded || refresh_degraded`.
    pub degraded: bool,
    /// Serving with quarantined documents from a degraded catalog open.
    pub store_degraded: bool,
    /// Auto-refresh struck out ([`MaintenanceStats::refresh_degraded`]).
    pub refresh_degraded: bool,
    /// Documents quarantined and awaiting repair.
    pub quarantined_shards: usize,
    /// Idle pooled estimation workspaces (0 when gathered from a bare
    /// database).
    pub pooled_workspaces: usize,
    /// Prepared-query cache view (monotonic counters + population
    /// gauges).
    pub cache: CacheStats,
    /// Grid maintenance view.
    pub maintenance: MaintenanceStats,
    /// Admission-front view (all fronts of this database combined).
    pub front: FrontStats,
    /// Every registered counter, folded.
    pub counters: Vec<CounterSample>,
    /// Per-stage latency quantiles, pipeline order.
    pub stages: Vec<StageLatency>,
    /// Most recent journal events, oldest first.
    pub events: Vec<Event>,
    /// Total events ever journaled (≥ `events.len()`).
    pub events_total: u64,
    /// Whether the recorder was enabled at snapshot time.
    pub recording_enabled: bool,
}

impl Telemetry {
    /// Assembles the unified snapshot from its per-layer parts.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gather(
        rec: &Recorder,
        metrics: &Metrics,
        epoch: u64,
        store_degraded: bool,
        quarantined_shards: usize,
        pooled_workspaces: usize,
        cache: CacheStats,
        maintenance: MaintenanceStats,
    ) -> Telemetry {
        let obs = rec.snapshot();
        let front = FrontStats {
            admitted: metrics.front_admitted.value(),
            batches: metrics.front_batches.value(),
            coalesced: metrics.front_coalesced.value(),
        };
        Telemetry {
            epoch,
            degraded: store_degraded || maintenance.refresh_degraded,
            store_degraded,
            refresh_degraded: maintenance.refresh_degraded,
            quarantined_shards,
            pooled_workspaces,
            cache,
            maintenance,
            front,
            counters: obs.counters,
            stages: obs
                .stages
                .iter()
                .map(|s| StageLatency::from_snapshot(s.stage, &s.snap))
                .collect(),
            events: obs.events,
            events_total: obs.events_total,
            recording_enabled: obs.enabled,
        }
    }

    /// The legacy [`ServiceStats`] view of this snapshot.
    pub fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            cache: self.cache,
            epoch: self.epoch,
            pooled_workspaces: self.pooled_workspaces,
        }
    }

    /// The legacy [`CacheStats`] view of this snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }

    /// The legacy [`FrontStats`] view of this snapshot (every front of
    /// the database combined).
    pub fn front_stats(&self) -> FrontStats {
        self.front
    }

    /// The legacy [`MaintenanceStats`] view of this snapshot.
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        self.maintenance
    }

    /// The named counter's folded value, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The named stage's latency row, if present.
    pub fn stage(&self, name: &str) -> Option<&StageLatency> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Prometheus exposition text: every registry counter with HELP and
    /// TYPE lines, engine gauges, and per-stage latency summaries.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for c in &self.counters {
            out.push_str("# HELP ");
            out.push_str(c.name);
            out.push(' ');
            out.push_str(c.doc);
            out.push_str("\n# TYPE ");
            out.push_str(c.name);
            out.push_str(" counter\n");
            out.push_str(c.name);
            out.push(' ');
            out.push_str(&c.value.to_string());
            out.push('\n');
        }
        let gauges: [(&str, &str, u64); 8] = [
            (
                "xmlest_epoch",
                "Monotonic version of everything estimates derive from.",
                self.epoch,
            ),
            (
                "xmlest_degraded",
                "1 when serving degraded (store or refresh).",
                self.degraded as u64,
            ),
            (
                "xmlest_store_degraded",
                "1 when serving with quarantined documents.",
                self.store_degraded as u64,
            ),
            (
                "xmlest_refresh_degraded",
                "1 when auto-refresh has struck out.",
                self.refresh_degraded as u64,
            ),
            (
                "xmlest_quarantined_shards",
                "Documents quarantined and awaiting repair.",
                self.quarantined_shards as u64,
            ),
            (
                "xmlest_cache_entries",
                "Live tier-1 prepared-cache entries.",
                self.cache.entries as u64,
            ),
            (
                "xmlest_pooled_workspaces",
                "Idle pooled estimation workspaces.",
                self.pooled_workspaces as u64,
            ),
            (
                "xmlest_events_total",
                "Structured events ever journaled.",
                self.events_total,
            ),
        ];
        for (name, doc, value) in gauges {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(doc);
            out.push_str("\n# TYPE ");
            out.push_str(name);
            out.push_str(" gauge\n");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out.push_str("# HELP xmlest_stage_latency_ns Per-stage estimate pipeline latency (log-bucket upper bounds).\n");
        out.push_str("# TYPE xmlest_stage_latency_ns summary\n");
        for s in &self.stages {
            for (q, v) in [("0.5", s.p50_ns), ("0.9", s.p90_ns), ("0.99", s.p99_ns)] {
                out.push_str("xmlest_stage_latency_ns{stage=\"");
                out.push_str(s.stage);
                out.push_str("\",quantile=\"");
                out.push_str(q);
                out.push_str("\"} ");
                out.push_str(&v.to_string());
                out.push('\n');
            }
            out.push_str("xmlest_stage_latency_ns_count{stage=\"");
            out.push_str(s.stage);
            out.push_str("\"} ");
            out.push_str(&s.count.to_string());
            out.push('\n');
        }
        out
    }

    /// Hand-rolled JSON (serde-free, matching the repo's persistence
    /// idiom): the whole snapshot as one object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        json_u64(&mut out, "epoch", self.epoch);
        json_bool(&mut out, "degraded", self.degraded);
        json_bool(&mut out, "store_degraded", self.store_degraded);
        json_bool(&mut out, "refresh_degraded", self.refresh_degraded);
        json_u64(
            &mut out,
            "quarantined_shards",
            self.quarantined_shards as u64,
        );
        json_u64(&mut out, "pooled_workspaces", self.pooled_workspaces as u64);
        json_bool(&mut out, "recording_enabled", self.recording_enabled);

        out.push_str("\"cache\":{");
        json_u64(&mut out, "hits", self.cache.hits);
        json_u64(&mut out, "misses", self.cache.misses);
        json_u64(&mut out, "invalidations", self.cache.invalidations);
        json_u64(&mut out, "evictions", self.cache.evictions);
        json_u64(&mut out, "entries", self.cache.entries as u64);
        json_u64(&mut out, "canonical", self.cache.canonical as u64);
        json_u64(&mut out, "interned", self.cache.interned as u64);
        json_u64(&mut out, "planned", self.cache.planned as u64);
        json_u64_last(&mut out, "ranked", self.cache.ranked as u64);
        out.push_str("},");

        out.push_str("\"front\":{");
        json_u64(&mut out, "admitted", self.front.admitted);
        json_u64(&mut out, "batches", self.front.batches);
        json_u64_last(&mut out, "coalesced", self.front.coalesced);
        out.push_str("},");

        let m = &self.maintenance;
        out.push_str("\"maintenance\":{");
        json_str_field(&mut out, "policy", &format!("{:?}", m.policy));
        json_u64(&mut out, "grid_capacity", m.grid_capacity);
        json_u64(&mut out, "occupied", m.occupied);
        json_f64(&mut out, "skew", m.skew);
        json_f64(&mut out, "baseline_skew", m.baseline_skew);
        json_f64(&mut out, "drift", m.drift);
        match m.drift_threshold {
            Some(t) => json_f64(&mut out, "drift_threshold", t),
            None => {
                out.push_str("\"drift_threshold\":null,");
            }
        }
        json_u64(&mut out, "mutations_since_derive", m.mutations_since_derive);
        json_u64(&mut out, "stable_appends", m.stable_appends);
        json_u64(&mut out, "stable_removes", m.stable_removes);
        json_u64(&mut out, "grid_moves", m.grid_moves);
        json_u64(&mut out, "pinned_rebuilds", m.pinned_rebuilds);
        json_u64(&mut out, "overflow_appends", m.overflow_appends);
        json_u64(&mut out, "refreshes", m.refreshes);
        json_u64(&mut out, "scoped_refreshes", m.scoped_refreshes);
        json_u64(&mut out, "spliced_entries", m.spliced_entries);
        json_u64(&mut out, "rebuilt_entries", m.rebuilt_entries);
        json_u64(&mut out, "auto_refreshes", m.auto_refreshes);
        json_u64(&mut out, "failed_auto_refreshes", m.failed_auto_refreshes);
        json_f64(&mut out, "last_refresh_drift", m.last_refresh_drift);
        json_u64(&mut out, "refresh_strikes", m.refresh_strikes as u64);
        json_u64(&mut out, "backoff_skips", m.backoff_skips);
        out.push_str("\"refresh_degraded\":");
        out.push_str(if m.refresh_degraded { "true" } else { "false" });
        out.push_str("},");

        out.push_str("\"counters\":{");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, c.name);
            out.push(':');
            out.push_str(&c.value.to_string());
        }
        out.push_str("},");

        out.push_str("\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_str_field(&mut out, "stage", s.stage);
            json_u64(&mut out, "count", s.count);
            json_u64(&mut out, "mean_ns", s.mean_ns);
            json_u64(&mut out, "p50_ns", s.p50_ns);
            json_u64(&mut out, "p90_ns", s.p90_ns);
            json_u64(&mut out, "p99_ns", s.p99_ns);
            json_u64_last(&mut out, "max_ns", s.max_ns);
            out.push('}');
        }
        out.push_str("],");

        json_u64(&mut out, "events_total", self.events_total);
        out.push_str("\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_u64(&mut out, "seq", e.seq);
            json_str_field(&mut out, "kind", e.kind.name());
            json_u64(&mut out, "epoch", e.epoch);
            json_u64(&mut out, "a", e.a);
            json_u64_last(&mut out, "b", e.b);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_u64(out: &mut String, key: &str, value: u64) {
    json_string(out, key);
    out.push(':');
    out.push_str(&value.to_string());
    out.push(',');
}

fn json_u64_last(out: &mut String, key: &str, value: u64) {
    json_string(out, key);
    out.push(':');
    out.push_str(&value.to_string());
}

fn json_bool(out: &mut String, key: &str, value: bool) {
    json_string(out, key);
    out.push(':');
    out.push_str(if value { "true" } else { "false" });
    out.push(',');
}

fn json_f64(out: &mut String, key: &str, value: f64) {
    json_string(out, key);
    out.push(':');
    if value.is_finite() {
        out.push_str(&format!("{value}"));
    } else {
        out.push_str("null");
    }
    out.push(',');
}

fn json_str_field(out: &mut String, key: &str, value: &str) {
    json_string(out, key);
    out.push(':');
    json_string(out, value);
    out.push(',');
}

// ---------------------------------------------------------------------------
// Estimate provenance
// ---------------------------------------------------------------------------

/// Which kernel one twig edge's join ran on, derived by mirroring the
/// estimator's dispatch: a parent side that still carries no-overlap
/// coverage takes the Fig. 10 co-merge, anything else the primitive
/// pH-join (Fig. 6). Parent–child edges additionally note the
/// level-histogram correction when both endpoints have level summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeKernel {
    /// Parent (ancestor-side) predicate rendering.
    pub parent: String,
    /// Child (descendant-side) predicate rendering.
    pub child: String,
    /// `"descendant"` (`//`) or `"child"` (`/`).
    pub axis: &'static str,
    /// `"no-overlap"` (coverage co-merge) or `"ph-join"` (primitive).
    pub kernel: &'static str,
    /// Whether the parent–child level-histogram correction applied.
    pub level_corrected: bool,
}

/// The estimate-provenance report returned by
/// [`crate::EstimationService::estimate_traced`]: the estimate plus
/// everything that produced it — resolved identity, epoch, cache tier,
/// chosen plan, per-edge kernels, and per-stage wall-clock timings.
/// The EXPLAIN-for-latency counterpart of the plan EXPLAIN
/// ([`crate::Planner::explain`]).
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The estimate itself — bit-identical to the untraced path's.
    pub estimate: xmlest_core::Estimate,
    /// Interned canonical identity the query resolved to.
    pub twig_id: TwigId,
    /// Epoch the estimate was served under.
    pub epoch: u64,
    /// How the query string met the prepared cache (probed before the
    /// traced run touched it).
    pub cache_tier: CacheTier,
    /// Cheapest costed plan (`None` for single-node patterns, which
    /// have nothing to order).
    pub plan: Option<Arc<CostedPlan>>,
    /// Per-edge kernel provenance, pre-order over the canonical twig.
    pub edges: Vec<EdgeKernel>,
    /// Parse-stage wall clock (0 for a warm cache hit — nothing
    /// parsed).
    pub parse_ns: u64,
    /// Canonicalize-stage wall clock (0 for a warm cache hit).
    pub canonicalize_ns: u64,
    /// Prepared-cache probe/install wall clock.
    pub prepare_ns: u64,
    /// Planning wall clock (0 when the plan was memoized).
    pub plan_ns: u64,
    /// Estimation-kernel wall clock.
    pub kernel_ns: u64,
}

impl TraceReport {
    /// Sum of the five stage timings.
    pub fn total_ns(&self) -> u64 {
        self.parse_ns
            .saturating_add(self.canonicalize_ns)
            .saturating_add(self.prepare_ns)
            .saturating_add(self.plan_ns)
            .saturating_add(self.kernel_ns)
    }
}

/// Leaf join properties of a predicate expression, mirroring
/// `Estimator::leaf_eval`: named/base predicates read their summary,
/// compound expressions synthesize a histogram and carry no coverage.
fn leaf_props(expr: &PredExpr, summaries: &Summaries) -> (bool, bool, bool) {
    let summary = match expr {
        PredExpr::Named(name) => summaries.get(name),
        PredExpr::Base(p) => summaries.iter().find(|s| &s.pred == p),
        _ => None,
    };
    match summary {
        Some(s) => (s.no_overlap, s.cvg.is_some(), s.levels.is_some()),
        None => (false, false, false),
    }
}

/// Derives per-edge kernel provenance for a canonical twig by
/// replaying the estimator's bottom-up dispatch over the summary
/// flags: the co-merge requires (and preserves) a no-overlap parent
/// side with coverage; the primitive join clears both.
pub(crate) fn edge_kernels(twig: &TwigNode, summaries: &Summaries) -> Vec<EdgeKernel> {
    let mut out = Vec::new();
    walk_edges(twig, summaries, &mut out);
    out
}

fn walk_edges(node: &TwigNode, summaries: &Summaries, out: &mut Vec<EdgeKernel>) {
    let (mut no_overlap, mut coverage, parent_levels) = leaf_props(&node.pred, summaries);
    for child in &node.children {
        let (_, _, child_levels) = leaf_props(&child.pred, summaries);
        let merge = no_overlap && coverage;
        out.push(EdgeKernel {
            parent: node.pred.to_string(),
            child: child.pred.to_string(),
            axis: match child.axis {
                Axis::Descendant => "descendant",
                Axis::Child => "child",
            },
            kernel: if merge { "no-overlap" } else { "ph-join" },
            level_corrected: child.axis == Axis::Child && parent_levels && child_levels,
        });
        // The merge kernel keeps the accumulated parent side's
        // no-overlap coverage for the next sibling join; the primitive
        // join drops it.
        no_overlap = merge;
        coverage = merge;
        walk_edges(child, summaries, out);
    }
}
