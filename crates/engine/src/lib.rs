//! A miniature native XML query engine — the TIMBER stand-in.
//!
//! The paper's Section 1 motivates answer-size estimation with a query
//! optimizer choosing between join orders: `faculty ⋈ RA` first versus
//! `faculty ⋈ TA` first, "depending on the cardinalities of the
//! intermediate result set, one plan may be substantially better than
//! another". This crate closes that loop end-to-end, as a **prepared-
//! query pipeline**:
//!
//! ```text
//!   query string ──parse──▶ TwigNode ──canonicalize──▶ canonical twig
//!        │                                                  │ intern
//!        │                                            TwigId + Arc<TwigNode>
//!        │                                                  │ resolve leaves
//!        └────────────▶ PreparedQuery  ◀────────────────────┘
//!                        │        │
//!               estimate │        │ plan (lazy, memoized by TwigId)
//!                        ▼        ▼
//!                   Estimate   CostedPlan ──execute──▶ Execution
//! ```
//!
//! * **Canonicalize** — `TwigNode::canonicalize` normalizes predicates
//!   and sorts sibling branches, so trivially different spellings
//!   (`a[.//b][.//c]` vs `a[.//c][.//b]`, whitespace variants) become
//!   one value; [`prepared`] hash-conses that value to a stable
//!   `TwigId`. Because every evaluation then runs on the one canonical
//!   ordering, equivalent spellings estimate **bit-identically**.
//! * **Prepare** — [`prepared::PreparedQuery`] carries the canonical
//!   twig, the leaf summary-resolutions, and a slot for the memoized
//!   cheapest plan. The two-tier cache (query string → entry,
//!   `TwigId` → entry; CLOCK-bounded string tier) serves warm hits
//!   with zero allocations.
//! * **Plan** — [`planner::Planner`] owns the costing workspace,
//!   enumerates connected join orders ([`plan`]), prices them through
//!   the estimator-fed cost model ([`cost`]), and memoizes the winner on
//!   the prepared entry. [`optimizer::Optimizer`] is the EXPLAIN-style
//!   facade over it.
//! * **Execute** — [`exec`] runs a plan against the element indexes,
//!   recording *actual* intermediate cardinalities next to the
//!   estimates.
//!
//! ## The epoch-invalidation contract
//!
//! [`db::Database`] versions everything estimates derive from with a
//! monotonically increasing **epoch**, bumped by `add_document`,
//! `remove_document` and `attach_dtd`. Every `PreparedQuery` (and the
//! plan memoized on it) records the epoch it was derived under; every
//! cache lookup and every `refresh_prepared` validates it. On mismatch
//! the entry is re-prepared from its interned twig — no re-parse — and
//! re-planned on next use, so a stale plan or resolution is
//! **unreachable**: the caches survive collection mutations warm in
//! identity, never in state. Coefficient tables follow the same
//! contract one layer down, bound to the summaries generation
//! (`CoeffCache`'s build id), which changes exactly when a mutation
//! replaces the summaries. The grid [`maintenance`] layer leans on the
//! same contract: an equi-depth refresh swaps the whole summary set to
//! a new grid and bumps the epoch, so every cached plan re-prepares
//! lazily — a stale-grid plan can never be served.
//!
//! ## Wait-free serving
//!
//! Every mutation commit additionally publishes an immutable,
//! epoch-stamped [`snapshot::Snapshot`] — summaries, coefficient cache
//! and a frozen prepared-twig view behind `Arc`s — through the
//! database's [`snapshot::SnapshotCell`]. Readers load the current
//! snapshot with one lock-free pointer load and estimate entirely
//! against it, never blocking on (or being blocked by) maintenance;
//! [`maintenance::MaintenanceWorker`] moves the mutations themselves
//! off-thread, and [`service::AdmissionFront`] batches request
//! admission over the same cell. See [`snapshot`] for the
//! read-vs-maintenance thread contract.

pub mod cost;
/// The database object: documents, catalog, indexes, summaries.
pub mod db;
/// Engine error and result types.
pub mod error;
/// Plan execution against the element index.
pub mod exec;
/// Incremental maintenance: appends, removals, drift-tracked refresh.
pub mod maintenance;
/// Estimate-driven join-order selection.
pub mod optimizer;
/// Flattened twigs and structural-join plan enumeration.
pub mod plan;
/// The unified planner: canonicalization, costing, plan cache.
pub mod planner;
/// Prepared queries: twig interning and the epoch-checked cache.
pub mod prepared;
/// The concurrent estimation service with pooled workspaces.
pub mod service;
/// Epoch-stamped serving snapshots and the RCU-style publication cell.
pub mod snapshot;
/// The unified telemetry surface and estimate provenance reports.
pub mod telemetry;

pub use db::{Database, RepairReport, StoreOpen};
pub use error::{Error, Result};
pub use maintenance::{MaintenanceStats, MaintenanceWorker, DEGRADED_AFTER_STRIKES};
pub use optimizer::{ExplainedPlan, Optimizer};
pub use plan::{FlatTwig, Plan, PlanStep};
pub use planner::Planner;
pub use prepared::{CacheStats, CacheTier, LeafResolution, PreparedQuery, TwigId};
pub use service::{
    AdmissionFront, AdmissionOptions, EstimationService, FrontStats, ServiceStats, TwigRef,
};
pub use snapshot::{Snapshot, SnapshotCell};
pub use telemetry::{EdgeKernel, StageLatency, Telemetry, TraceReport};
// The observability core's own types, re-exported so downstream code
// (examples, benches, tests) can consume telemetry without depending on
// `xmlest-xobs` directly.
pub use xmlest_xobs::{
    CounterSample, Event, EventKind, HistogramSnapshot, ObsSnapshot, Recorder, Stage,
};
