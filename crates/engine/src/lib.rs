//! A miniature native XML query engine — the TIMBER stand-in.
//!
//! The paper's Section 1 motivates answer-size estimation with a query
//! optimizer choosing between join orders: `faculty ⋈ RA` first versus
//! `faculty ⋈ TA` first, "depending on the cardinalities of the
//! intermediate result set, one plan may be substantially better than
//! another". This crate closes that loop end-to-end:
//!
//! * [`db::Database`] — a loaded document plus catalog, element indexes
//!   (sorted node lists per predicate) and the estimation summaries;
//! * [`plan`] — twig evaluation plans: connected orders over the query's
//!   edges, each step a stack-based structural semi-join;
//! * [`cost`] — a cost model fed exclusively by the estimator
//!   (inputs + estimated output per step);
//! * [`exec`] — plan execution that records *actual* intermediate
//!   cardinalities next to the estimates;
//! * [`optimizer`] — exhaustive connected-order enumeration picking the
//!   cheapest estimated plan, with EXPLAIN-style reporting.

pub mod cost;
pub mod db;
pub mod error;
pub mod exec;
pub mod optimizer;
pub mod plan;
pub mod service;

pub use db::Database;
pub use error::{Error, Result};
pub use optimizer::{ExplainedPlan, Optimizer};
pub use plan::{FlatTwig, Plan, PlanStep};
pub use service::{EstimationService, TwigRef};
