//! Twig evaluation plans.
//!
//! A twig with `k` nodes has `k − 1` edges; a **plan** is an order in
//! which those edges are joined such that every prefix touches a
//! connected sub-pattern (left-deep structural-join trees). The first
//! edge may be any edge; each later edge must share a pattern node with
//! the already-joined component.

use xmlest_core::{Axis, TwigNode};
use xmlest_predicate::PredExpr;

/// A twig flattened to indexed nodes (0 = pattern root, pre-order).
#[derive(Debug, Clone)]
pub struct FlatTwig {
    pub preds: Vec<PredExpr>,
    /// `(parent index, child index, axis)` per edge, pre-order.
    pub edges: Vec<(usize, usize, Axis)>,
}

impl FlatTwig {
    /// Flattens `twig` into indexed predicate and edge lists, pre-order.
    pub fn from_twig(twig: &TwigNode) -> FlatTwig {
        let mut preds = Vec::new();
        let mut edges = Vec::new();
        flatten(twig, None, &mut preds, &mut edges);
        FlatTwig { preds, edges }
    }

    /// Number of pattern nodes.
    pub fn node_count(&self) -> usize {
        self.preds.len()
    }

    /// Rebuilds the (sub-)twig induced by a set of nodes, rooted at the
    /// minimum index in the set. The set must be connected through the
    /// twig's edges. Used to estimate intermediate-result sizes.
    pub fn induced_twig(&self, nodes: &[usize]) -> TwigNode {
        let root = *nodes.iter().min().expect("non-empty node set"); // xlint: allow(no-panic, "documented precondition: induced node sets are non-empty by construction")
        self.build_node(root, nodes)
    }

    fn build_node(&self, idx: usize, keep: &[usize]) -> TwigNode {
        let mut node = TwigNode::with_pred(self.preds[idx].clone());
        for &(p, c, axis) in &self.edges {
            if p == idx && keep.contains(&c) {
                let mut child = self.build_node(c, keep);
                child.axis = axis;
                node.children.push(child);
            }
        }
        node
    }

    /// The axis of edge `e`.
    pub fn axis(&self, e: usize) -> Axis {
        self.edges[e].2
    }
}

fn flatten(
    node: &TwigNode,
    parent: Option<usize>,
    preds: &mut Vec<PredExpr>,
    edges: &mut Vec<(usize, usize, Axis)>,
) {
    let idx = preds.len();
    preds.push(node.pred.clone());
    if let Some(p) = parent {
        edges.push((p, idx, node.axis));
    }
    for child in &node.children {
        flatten(child, Some(idx), preds, edges);
    }
}

/// One structural-join step: the edge index into [`FlatTwig::edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStep(pub usize);

/// Physical algorithm for one join step — the "multiple join
/// algorithms" whose choice Section 1 motivates estimation for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgorithm {
    /// Stack-based merge over both sorted candidate lists:
    /// O(|A| + |D| + |out|).
    Structural,
    /// Node-at-a-time subtree scan from each ancestor candidate:
    /// O(Σ subtree sizes + |out|) — wins when ancestors are few and
    /// shallow but the descendant list is huge.
    Navigational,
}

/// An edge order forming a left-deep plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    pub steps: Vec<PlanStep>,
}

impl Plan {
    /// Validates connectivity: each step after the first must attach to
    /// the component built so far.
    pub fn is_connected(&self, twig: &FlatTwig) -> bool {
        let mut joined: Vec<usize> = Vec::new();
        for (i, step) in self.steps.iter().enumerate() {
            let Some(&(p, c, _)) = twig.edges.get(step.0) else {
                return false;
            };
            if i == 0 {
                joined.extend([p, c]);
            } else if joined.contains(&p) && !joined.contains(&c) {
                joined.push(c);
            } else if joined.contains(&c) && !joined.contains(&p) {
                joined.push(p);
            } else {
                return false;
            }
        }
        self.steps.len() == twig.edges.len()
    }
}

/// Enumerates all connected edge orders (left-deep plans) of a twig,
/// capped to keep planning tractable on large patterns.
pub fn enumerate_plans(twig: &FlatTwig, cap: usize) -> Vec<Plan> {
    let e = twig.edges.len();
    let mut out = Vec::new();
    if e == 0 {
        return out;
    }
    let mut current: Vec<usize> = Vec::new();
    let mut used = vec![false; e];
    let mut joined: Vec<usize> = Vec::new();
    fn recurse(
        twig: &FlatTwig,
        current: &mut Vec<usize>,
        used: &mut Vec<bool>,
        joined: &mut Vec<usize>,
        out: &mut Vec<Plan>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if current.len() == twig.edges.len() {
            out.push(Plan {
                steps: current.iter().map(|&e| PlanStep(e)).collect(),
            });
            return;
        }
        for e in 0..twig.edges.len() {
            if used[e] {
                continue;
            }
            let (p, c, _) = twig.edges[e];
            let connects = joined.is_empty() || (joined.contains(&p) ^ joined.contains(&c));
            if !connects {
                continue;
            }
            used[e] = true;
            current.push(e);
            let added: Vec<usize> = [p, c].into_iter().filter(|n| !joined.contains(n)).collect();
            joined.extend(&added);
            recurse(twig, current, used, joined, out, cap);
            for _ in &added {
                joined.pop();
            }
            current.pop();
            used[e] = false;
        }
    }
    recurse(twig, &mut current, &mut used, &mut joined, &mut out, cap);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlest_query::parse_path;

    fn fig2() -> FlatTwig {
        FlatTwig::from_twig(&parse_path("//department//faculty[.//TA][.//RA]").unwrap())
    }

    #[test]
    fn flatten_fig2() {
        let t = fig2();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.edges.len(), 3);
        // Edges: dept->faculty, faculty->TA, faculty->RA.
        assert_eq!(t.edges[0].0, 0);
        assert_eq!(t.edges[0].1, 1);
        assert_eq!(t.edges[1], (1, 2, Axis::Descendant));
        assert_eq!(t.edges[2], (1, 3, Axis::Descendant));
    }

    #[test]
    fn induced_twig_round_trip() {
        let t = fig2();
        let full = t.induced_twig(&[0, 1, 2, 3]);
        assert_eq!(full.node_count(), 4);
        let partial = t.induced_twig(&[1, 3]);
        assert_eq!(partial.node_count(), 2);
        assert_eq!(partial.pred.to_string(), "faculty");
        assert_eq!(partial.children[0].pred.to_string(), "RA");
    }

    #[test]
    fn enumerate_connected_orders() {
        let t = fig2();
        let plans = enumerate_plans(&t, 1000);
        // Edges: e0 = dept-fac, e1 = fac-TA, e2 = fac-RA. All 3! = 6
        // permutations are connected (every edge touches faculty).
        assert_eq!(plans.len(), 6);
        for p in &plans {
            assert!(p.is_connected(&t), "{p:?}");
        }
    }

    #[test]
    fn chain_has_constrained_orders() {
        // a//b//c: edges e0 = a-b, e1 = b-c; both orders are connected.
        let t = FlatTwig::from_twig(&parse_path("//a//b//c").unwrap());
        let plans = enumerate_plans(&t, 1000);
        assert_eq!(plans.len(), 2);
        // A 4-chain: e0=a-b, e1=b-c, e2=c-d. Order [e0, e2, ...] is
        // disconnected at step 2.
        let t = FlatTwig::from_twig(&parse_path("//a//b//c//d").unwrap());
        let plans = enumerate_plans(&t, 1000);
        for p in &plans {
            assert!(p.is_connected(&t));
        }
        // Connected orders of a path with 3 edges: e0 then {e1 then e2},
        // e1 then {e0, e2} in any order, e2 then e1 then e0 -> 4? Count:
        // starting from any edge, extend left/right: orders = 2^(k-1) = 4.
        assert_eq!(plans.len(), 4);
    }

    #[test]
    fn disconnected_plans_rejected() {
        let t = FlatTwig::from_twig(&parse_path("//a//b//c//d").unwrap());
        let bad = Plan {
            steps: vec![PlanStep(0), PlanStep(2), PlanStep(1)],
        };
        assert!(!bad.is_connected(&t));
        let incomplete = Plan {
            steps: vec![PlanStep(0)],
        };
        assert!(!incomplete.is_connected(&t));
    }

    #[test]
    fn single_node_twig_has_no_plans() {
        let t = FlatTwig::from_twig(&parse_path("//a").unwrap());
        assert!(enumerate_plans(&t, 10).is_empty());
    }

    #[test]
    fn cap_limits_enumeration() {
        let t = fig2();
        let plans = enumerate_plans(&t, 2);
        assert_eq!(plans.len(), 2);
    }
}
