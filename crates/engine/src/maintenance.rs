//! Grid maintenance: drift accounting, the slack-capacity stable-append
//! path, and the drift-triggered equi-depth refresh.
//!
//! The serving view ([`crate::db::Database`]'s merged summaries) lives
//! on one grid. Historically every collection mutation re-derived that
//! grid from scratch, which moved the boundaries and re-bucketed every
//! shard — `add_document` cost O(collection). A grid that never moves
//! is no better: its equi-depth fit decays as the data distribution
//! shifts, and accuracy slides toward the uniform-grid regime. This
//! module is the policy layer that resolves the tension:
//!
//! ```text
//!                 mutation (add_document / remove_document)
//!                                   │
//!                     fits in slack capacity?          GridPolicy::Slack
//!                ┌─────────yes──────┴───────no─────────┐
//!                ▼                                     ▼
//!      STABLE PATH  O(new doc)                MOVING PATH  O(collection)
//!      · build one shard on the               · re-derive grid (policy-
//!        existing grid                          padded span, equi-depth
//!      · merge with the *reused*                from classified lists)
//!        old shard summaries                  · rebuild all shards in
//!      · extend mega-tree + index               parallel, re-merge
//!        in place                             · atomic swap
//!                │                                     │
//!                └────────────┬────────────────────────┘
//!                             ▼
//!                DRIFT TRACKER  (xmlest_core::regrid)
//!                · per-predicate bucket occupancy of the
//!                  stored classified lists, O(doc) update
//!                · drift = skew − baseline-at-derivation
//!                             │
//!                   drift > threshold?  (auto_refresh)
//!                             │ yes
//!                             ▼
//!                EQUI-DEPTH REFRESH  (Database::refresh_grid)
//!                · recompute boundaries from the classified
//!                  lists — zero tree traversal
//!                · rebuild every shard in parallel on the
//!                  new grid, merge, swap atomically
//!                             │
//!                             ▼
//!                EPOCH BUMP → prepared-query cache re-prepares
//!                lazily; a stale-grid plan is never served
//! ```
//!
//! The refresh re-derives the grid with the same deterministic
//! procedure a cold build uses ([`xmlest_core::shard::make_collection_grid`]
//! under the same [`GridPolicy`]), so post-refresh estimates are
//! **bit-identical** to a database built cold on the refreshed
//! collection — `tests/grid_maintenance.rs` pins this, and the
//! `grid_maintenance` bench (BENCH_regrid.json) measures the stable
//! path's O(new doc) margin over the moving path.
//!
//! State lives in two places: the [`DriftTracker`] (per-predicate
//! occupancy rows, persisted in catalog v2 sections so a reopened
//! database resumes accounting) and the session [`MaintenanceCounters`]
//! (how often each path ran — observability only, reset on reopen).

use crate::db::Database;
use crate::error::{Error, Result};
use crate::snapshot::{Snapshot, SnapshotCell};
use std::sync::mpsc;
use std::sync::Arc;
use xmlest_core::{DriftTracker, Estimate, GridPolicy};

/// Consecutive auto-refresh failures after which the database raises
/// its visible degraded flag ([`MaintenanceStats::refresh_degraded`]):
/// the grid is drifting past the threshold and repeated rebuild
/// attempts are not fixing it, so accuracy is decaying toward the
/// stale-grid regime and an operator should look.
pub const DEGRADED_AFTER_STRIKES: u32 = 3;

/// Cap on the exponential refresh backoff: at most `2^6 = 64` mutations
/// between retry attempts, so a long outage cannot push the next retry
/// arbitrarily far away.
pub(crate) const MAX_BACKOFF_SHIFT: u32 = 6;

/// Session counters for the maintenance paths. Monotonic per database
/// lifetime; not persisted.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MaintenanceCounters {
    /// Appends that reused the grid and every existing shard summary.
    pub stable_appends: u64,
    /// Removals of the newest document that reused grid and shards.
    pub stable_removes: u64,
    /// Rebuilds that re-derived the grid (static-policy mutations,
    /// overflowing appends, refreshes).
    pub grid_moves: u64,
    /// Interior removals under the slack policy: every remaining shard
    /// rebuilt (positions compacted) on the *pinned* grid — as
    /// expensive as a grid move, without moving the boundaries.
    pub pinned_rebuilds: u64,
    /// Appends that did not fit in the slack capacity.
    pub overflow_appends: u64,
    /// Equi-depth refreshes (manual + automatic).
    pub refreshes: u64,
    /// Refreshes served by the predicate-scoped splice path
    /// ([`xmlest_core::refresh`]) instead of a full rebuild.
    pub scoped_refreshes: u64,
    /// Merged-view predicate tables spliced verbatim across scoped
    /// refreshes (cumulative).
    pub spliced_entries: u64,
    /// Merged-view predicate tables re-merged during scoped refreshes
    /// (cumulative).
    pub rebuilt_entries: u64,
    /// Refreshes fired by the drift threshold inside a mutation.
    pub auto_refreshes: u64,
    /// Drift-triggered refreshes that failed to rebuild. The mutation
    /// that hosted them still committed (the database keeps serving on
    /// the old grid, drift stays high); see
    /// [`crate::db::Database::add_document`].
    pub failed_auto_refreshes: u64,
    /// Drift observed when the last refresh fired.
    pub last_refresh_drift: f64,
    /// **Consecutive** auto-refresh failures (reset by any successful
    /// refresh). Drives the exponential backoff and, at
    /// [`DEGRADED_AFTER_STRIKES`], the degraded flag.
    pub refresh_strikes: u32,
    /// Mutation-clock value before which over-threshold drift does
    /// *not* trigger another refresh attempt (exponential backoff:
    /// `2^min(strikes-1, 6)` mutations after a failure).
    pub refresh_backoff_until: u64,
    /// Auto-refresh opportunities skipped because the backoff window
    /// was still open.
    pub backoff_skips: u64,
    /// Mutations observed by the auto-refresh hook — the clock the
    /// backoff window is measured on.
    pub mutation_clock: u64,
    /// Raised after [`DEGRADED_AFTER_STRIKES`] consecutive failures;
    /// cleared by the next successful refresh (auto or manual). While
    /// set, estimates still serve but on a grid known to be drifting.
    pub refresh_degraded: bool,
}

/// The maintenance half of a database: drift accounting plus path
/// counters.
#[derive(Debug)]
pub(crate) struct MaintenanceState {
    pub tracker: DriftTracker,
    pub counters: MaintenanceCounters,
}

impl MaintenanceState {
    pub(crate) fn new(g: u16) -> Self {
        MaintenanceState {
            tracker: DriftTracker::new(g),
            counters: MaintenanceCounters::default(),
        }
    }

    pub(crate) fn with_tracker(tracker: DriftTracker) -> Self {
        MaintenanceState {
            tracker,
            counters: MaintenanceCounters::default(),
        }
    }
}

/// Observability snapshot of the grid maintenance layer
/// ([`crate::db::Database::maintenance_stats`],
/// [`crate::service::EstimationService::maintenance_stats`]).
///
/// Also folded verbatim into [`crate::telemetry::Telemetry`] — this
/// struct is the maintenance *view* of the unified surface.
///
/// ## Reset contract
///
/// The cumulative path counters (`stable_appends`, `stable_removes`,
/// `grid_moves`, `pinned_rebuilds`, `overflow_appends`, `refreshes`,
/// `scoped_refreshes`, `spliced_entries`, `rebuilt_entries`,
/// `auto_refreshes`, `failed_auto_refreshes`, `backoff_skips`) are
/// **monotonic for the lifetime of the database**: they survive grid
/// refreshes and full rebuilds and are never reset by any API. Rate
/// them by differencing successive snapshots. Everything else is a
/// **gauge / level**: `skew`, `baseline_skew`, `drift`,
/// `grid_capacity`, `occupied`, `mutations_since_derive`,
/// `last_refresh_drift` and `refresh_degraded` move both ways, and
/// `refresh_strikes` drops back to zero on any successful refresh.
#[derive(Debug, Clone, Copy)]
pub struct MaintenanceStats {
    /// The active grid policy.
    pub policy: GridPolicy,
    /// Positions the current grid covers (`max_pos + 1`, slack
    /// included).
    pub grid_capacity: u64,
    /// Positions currently occupied (mega-root + every document).
    pub occupied: u64,
    /// Aggregate bucket-occupancy skew (0 = equi-depth ideal).
    pub skew: f64,
    /// Skew recorded when the grid was last derived.
    pub baseline_skew: f64,
    /// `max(0, skew − baseline)` — what the threshold compares against.
    pub drift: f64,
    /// The policy's refresh threshold, when it has one.
    pub drift_threshold: Option<f64>,
    /// Mutations since the grid was last derived.
    pub mutations_since_derive: u64,
    /// See [`MaintenanceCounters`].
    pub stable_appends: u64,
    pub stable_removes: u64,
    pub grid_moves: u64,
    pub pinned_rebuilds: u64,
    pub overflow_appends: u64,
    pub refreshes: u64,
    /// Refreshes that took the predicate-scoped splice path.
    pub scoped_refreshes: u64,
    /// Predicate tables spliced across scoped refreshes (cumulative).
    pub spliced_entries: u64,
    /// Predicate tables re-merged during scoped refreshes (cumulative).
    pub rebuilt_entries: u64,
    pub auto_refreshes: u64,
    pub failed_auto_refreshes: u64,
    pub last_refresh_drift: f64,
    /// Consecutive auto-refresh failures (see
    /// [`MaintenanceCounters::refresh_strikes`]).
    pub refresh_strikes: u32,
    /// Auto-refresh opportunities skipped inside a backoff window.
    pub backoff_skips: u64,
    /// The database is serving on a drifting grid that repeated
    /// refresh attempts failed to rebuild
    /// ([`DEGRADED_AFTER_STRIKES`] consecutive failures). Cleared by
    /// the next successful refresh.
    pub refresh_degraded: bool,
}

impl MaintenanceStats {
    /// Free positions left before an append overflows the grid.
    pub fn slack_remaining(&self) -> u64 {
        self.grid_capacity.saturating_sub(self.occupied)
    }

    /// Whether the next auto-refresh check would fire.
    pub fn over_threshold(&self) -> bool {
        self.drift_threshold.is_some_and(|t| self.drift > t)
    }
}

// ---- the off-thread maintenance worker --------------------------------

/// Command-queue depth for the worker thread. Mutations are rare and
/// heavyweight next to estimates; a small bound applies backpressure to
/// a runaway producer instead of buffering unbounded work.
const WORKER_QUEUE_DEPTH: usize = 64;

/// One queued mutation (or introspection request) with its reply slot.
enum Command {
    Append {
        name: String,
        xml: String,
        reply: mpsc::Sender<Result<()>>,
    },
    Remove {
        name: String,
        reply: mpsc::Sender<Result<()>>,
    },
    Refresh {
        reply: mpsc::Sender<Result<()>>,
    },
    Probe {
        queries: Vec<String>,
        reply: mpsc::Sender<(u64, Vec<Result<Estimate>>)>,
    },
    Stats {
        reply: mpsc::Sender<Box<MaintenanceStats>>,
    },
    Shutdown {
        reply: mpsc::Sender<Box<Database>>,
    },
}

/// The off-thread maintenance half of wait-free serving: owns the
/// [`Database`] on a dedicated thread and serializes every mutation
/// through a bounded command queue, while readers estimate against the
/// shared [`SnapshotCell`] without ever touching this thread.
///
/// ```text
///   readers ──▶ SnapshotCell::current() ──▶ estimate   (wait-free)
///                      ▲ publish
///   mutations ──queue──▶ worker thread: &mut Database  (serialized)
/// ```
///
/// Mutation methods block the *caller* until the worker commits (the
/// queue bound is the only buffering), but never block readers: the
/// successor snapshot is built entirely on this thread and installed by
/// pointer swap. Dropping the worker shuts the thread down;
/// [`MaintenanceWorker::shutdown`] hands the database back instead.
pub struct MaintenanceWorker {
    commands: crossbeam::channel::Sender<Command>,
    serving: Arc<SnapshotCell>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MaintenanceWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceWorker")
            .field("epoch", &self.serving.epoch())
            .finish_non_exhaustive()
    }
}

fn worker_gone() -> Error {
    Error::Service("maintenance worker is gone".into())
}

impl MaintenanceWorker {
    /// Moves `db` onto a dedicated maintenance thread and returns the
    /// handle mutations go through. The serving cell is captured before
    /// the move, so readers keep loading snapshots from the same cell
    /// the worker publishes to.
    pub fn spawn(db: Database) -> MaintenanceWorker {
        let serving = db.serving();
        let (tx, rx) = crossbeam::channel::bounded::<Command>(WORKER_QUEUE_DEPTH);
        let handle = std::thread::spawn(move || {
            let mut db = db;
            while let Ok(cmd) = rx.recv() {
                match cmd {
                    Command::Append { name, xml, reply } => {
                        let _ = reply.send(db.add_document(name, &xml));
                    }
                    Command::Remove { name, reply } => {
                        let _ = reply.send(db.remove_document(&name));
                    }
                    Command::Refresh { reply } => {
                        let _ = reply.send(db.refresh_grid());
                    }
                    Command::Probe { queries, reply } => {
                        let snap = db.snapshot();
                        let results = queries.iter().map(|q| snap.estimate(q)).collect();
                        let _ = reply.send((snap.epoch(), results));
                    }
                    Command::Stats { reply } => {
                        let _ = reply.send(Box::new(db.maintenance_stats()));
                    }
                    Command::Shutdown { reply } => {
                        let _ = reply.send(Box::new(db));
                        return;
                    }
                }
            }
            // Every sender dropped without a shutdown: the database
            // (and its final snapshot) drops with this thread.
        });
        MaintenanceWorker {
            commands: tx,
            serving,
            handle: Some(handle),
        }
    }

    /// The shared serving cell — hand this to readers and service
    /// fronts; it outlives refreshes, rebuilds and the worker itself.
    pub fn serving(&self) -> Arc<SnapshotCell> {
        self.serving.clone()
    }

    /// The current serving snapshot — one lock-free pointer load.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.serving.current()
    }

    fn round_trip<T>(&self, make: impl FnOnce(mpsc::Sender<T>) -> Command) -> Result<T> {
        let (reply, rx) = mpsc::channel();
        self.commands.send(make(reply)).map_err(|_| worker_gone())?;
        rx.recv().map_err(|_| worker_gone())
    }

    /// Queues an append and blocks until the worker commits (or
    /// rejects) it. Readers are never blocked; they switch to the new
    /// snapshot at its publish.
    pub fn add_document(&self, name: impl Into<String>, xml: &str) -> Result<()> {
        let name = name.into();
        let xml = xml.to_owned();
        self.round_trip(|reply| Command::Append { name, xml, reply })?
    }

    /// Queues a removal and blocks until the worker commits it.
    pub fn remove_document(&self, name: &str) -> Result<()> {
        let name = name.to_owned();
        self.round_trip(|reply| Command::Remove { name, reply })?
    }

    /// Queues a manual equi-depth refresh and blocks until it lands.
    pub fn refresh_grid(&self) -> Result<()> {
        self.round_trip(|reply| Command::Refresh { reply })?
    }

    /// Estimates `queries` **on the maintenance thread itself**, between
    /// mutations, and returns them with the epoch they ran under. This
    /// is the single-threaded replay oracle: because the worker thread
    /// is the only mutator, the returned values are exactly what any
    /// wait-free reader must observe for that epoch — the concurrency
    /// torture test compares reader results bit-for-bit against these.
    pub fn probe(&self, queries: &[&str]) -> Result<(u64, Vec<Result<Estimate>>)> {
        let queries: Vec<String> = queries.iter().map(|q| (*q).to_owned()).collect();
        self.round_trip(|reply| Command::Probe { queries, reply })
    }

    /// Maintenance counters, read on the worker thread.
    pub fn stats(&self) -> Result<MaintenanceStats> {
        self.round_trip(|reply| Command::Stats { reply })
            .map(|b| *b)
    }

    /// Stops the worker and hands the database back (with every queued
    /// command before the shutdown applied).
    pub fn shutdown(mut self) -> Result<Database> {
        let db = self
            .round_trip(|reply| Command::Shutdown { reply })
            .map(|b| *b)?;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        Ok(db)
    }
}

impl Drop for MaintenanceWorker {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let (reply, _rx) = mpsc::channel();
            let _ = self.commands.send(Command::Shutdown { reply });
            let _ = handle.join();
        }
    }
}
