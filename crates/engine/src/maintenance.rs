//! Grid maintenance: drift accounting, the slack-capacity stable-append
//! path, and the drift-triggered equi-depth refresh.
//!
//! The serving view ([`crate::db::Database`]'s merged summaries) lives
//! on one grid. Historically every collection mutation re-derived that
//! grid from scratch, which moved the boundaries and re-bucketed every
//! shard — `add_document` cost O(collection). A grid that never moves
//! is no better: its equi-depth fit decays as the data distribution
//! shifts, and accuracy slides toward the uniform-grid regime. This
//! module is the policy layer that resolves the tension:
//!
//! ```text
//!                 mutation (add_document / remove_document)
//!                                   │
//!                     fits in slack capacity?          GridPolicy::Slack
//!                ┌─────────yes──────┴───────no─────────┐
//!                ▼                                     ▼
//!      STABLE PATH  O(new doc)                MOVING PATH  O(collection)
//!      · build one shard on the               · re-derive grid (policy-
//!        existing grid                          padded span, equi-depth
//!      · merge with the *reused*                from classified lists)
//!        old shard summaries                  · rebuild all shards in
//!      · extend mega-tree + index               parallel, re-merge
//!        in place                             · atomic swap
//!                │                                     │
//!                └────────────┬────────────────────────┘
//!                             ▼
//!                DRIFT TRACKER  (xmlest_core::regrid)
//!                · per-predicate bucket occupancy of the
//!                  stored classified lists, O(doc) update
//!                · drift = skew − baseline-at-derivation
//!                             │
//!                   drift > threshold?  (auto_refresh)
//!                             │ yes
//!                             ▼
//!                EQUI-DEPTH REFRESH  (Database::refresh_grid)
//!                · recompute boundaries from the classified
//!                  lists — zero tree traversal
//!                · rebuild every shard in parallel on the
//!                  new grid, merge, swap atomically
//!                             │
//!                             ▼
//!                EPOCH BUMP → prepared-query cache re-prepares
//!                lazily; a stale-grid plan is never served
//! ```
//!
//! The refresh re-derives the grid with the same deterministic
//! procedure a cold build uses ([`xmlest_core::shard::make_collection_grid`]
//! under the same [`GridPolicy`]), so post-refresh estimates are
//! **bit-identical** to a database built cold on the refreshed
//! collection — `tests/grid_maintenance.rs` pins this, and the
//! `grid_maintenance` bench (BENCH_regrid.json) measures the stable
//! path's O(new doc) margin over the moving path.
//!
//! State lives in two places: the [`DriftTracker`] (per-predicate
//! occupancy rows, persisted in catalog v2 sections so a reopened
//! database resumes accounting) and the session [`MaintenanceCounters`]
//! (how often each path ran — observability only, reset on reopen).

use xmlest_core::{DriftTracker, GridPolicy};

/// Consecutive auto-refresh failures after which the database raises
/// its visible degraded flag ([`MaintenanceStats::refresh_degraded`]):
/// the grid is drifting past the threshold and repeated rebuild
/// attempts are not fixing it, so accuracy is decaying toward the
/// stale-grid regime and an operator should look.
pub const DEGRADED_AFTER_STRIKES: u32 = 3;

/// Cap on the exponential refresh backoff: at most `2^6 = 64` mutations
/// between retry attempts, so a long outage cannot push the next retry
/// arbitrarily far away.
pub(crate) const MAX_BACKOFF_SHIFT: u32 = 6;

/// Session counters for the maintenance paths. Monotonic per database
/// lifetime; not persisted.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MaintenanceCounters {
    /// Appends that reused the grid and every existing shard summary.
    pub stable_appends: u64,
    /// Removals of the newest document that reused grid and shards.
    pub stable_removes: u64,
    /// Rebuilds that re-derived the grid (static-policy mutations,
    /// overflowing appends, refreshes).
    pub grid_moves: u64,
    /// Interior removals under the slack policy: every remaining shard
    /// rebuilt (positions compacted) on the *pinned* grid — as
    /// expensive as a grid move, without moving the boundaries.
    pub pinned_rebuilds: u64,
    /// Appends that did not fit in the slack capacity.
    pub overflow_appends: u64,
    /// Equi-depth refreshes (manual + automatic).
    pub refreshes: u64,
    /// Refreshes served by the predicate-scoped splice path
    /// ([`xmlest_core::refresh`]) instead of a full rebuild.
    pub scoped_refreshes: u64,
    /// Merged-view predicate tables spliced verbatim across scoped
    /// refreshes (cumulative).
    pub spliced_entries: u64,
    /// Merged-view predicate tables re-merged during scoped refreshes
    /// (cumulative).
    pub rebuilt_entries: u64,
    /// Refreshes fired by the drift threshold inside a mutation.
    pub auto_refreshes: u64,
    /// Drift-triggered refreshes that failed to rebuild. The mutation
    /// that hosted them still committed (the database keeps serving on
    /// the old grid, drift stays high); see
    /// [`crate::db::Database::add_document`].
    pub failed_auto_refreshes: u64,
    /// Drift observed when the last refresh fired.
    pub last_refresh_drift: f64,
    /// **Consecutive** auto-refresh failures (reset by any successful
    /// refresh). Drives the exponential backoff and, at
    /// [`DEGRADED_AFTER_STRIKES`], the degraded flag.
    pub refresh_strikes: u32,
    /// Mutation-clock value before which over-threshold drift does
    /// *not* trigger another refresh attempt (exponential backoff:
    /// `2^min(strikes-1, 6)` mutations after a failure).
    pub refresh_backoff_until: u64,
    /// Auto-refresh opportunities skipped because the backoff window
    /// was still open.
    pub backoff_skips: u64,
    /// Mutations observed by the auto-refresh hook — the clock the
    /// backoff window is measured on.
    pub mutation_clock: u64,
    /// Raised after [`DEGRADED_AFTER_STRIKES`] consecutive failures;
    /// cleared by the next successful refresh (auto or manual). While
    /// set, estimates still serve but on a grid known to be drifting.
    pub refresh_degraded: bool,
}

/// The maintenance half of a database: drift accounting plus path
/// counters.
#[derive(Debug)]
pub(crate) struct MaintenanceState {
    pub tracker: DriftTracker,
    pub counters: MaintenanceCounters,
}

impl MaintenanceState {
    pub(crate) fn new(g: u16) -> Self {
        MaintenanceState {
            tracker: DriftTracker::new(g),
            counters: MaintenanceCounters::default(),
        }
    }

    pub(crate) fn with_tracker(tracker: DriftTracker) -> Self {
        MaintenanceState {
            tracker,
            counters: MaintenanceCounters::default(),
        }
    }
}

/// Observability snapshot of the grid maintenance layer
/// ([`crate::db::Database::maintenance_stats`],
/// [`crate::service::EstimationService::maintenance_stats`]).
#[derive(Debug, Clone, Copy)]
pub struct MaintenanceStats {
    /// The active grid policy.
    pub policy: GridPolicy,
    /// Positions the current grid covers (`max_pos + 1`, slack
    /// included).
    pub grid_capacity: u64,
    /// Positions currently occupied (mega-root + every document).
    pub occupied: u64,
    /// Aggregate bucket-occupancy skew (0 = equi-depth ideal).
    pub skew: f64,
    /// Skew recorded when the grid was last derived.
    pub baseline_skew: f64,
    /// `max(0, skew − baseline)` — what the threshold compares against.
    pub drift: f64,
    /// The policy's refresh threshold, when it has one.
    pub drift_threshold: Option<f64>,
    /// Mutations since the grid was last derived.
    pub mutations_since_derive: u64,
    /// See [`MaintenanceCounters`].
    pub stable_appends: u64,
    pub stable_removes: u64,
    pub grid_moves: u64,
    pub pinned_rebuilds: u64,
    pub overflow_appends: u64,
    pub refreshes: u64,
    /// Refreshes that took the predicate-scoped splice path.
    pub scoped_refreshes: u64,
    /// Predicate tables spliced across scoped refreshes (cumulative).
    pub spliced_entries: u64,
    /// Predicate tables re-merged during scoped refreshes (cumulative).
    pub rebuilt_entries: u64,
    pub auto_refreshes: u64,
    pub failed_auto_refreshes: u64,
    pub last_refresh_drift: f64,
    /// Consecutive auto-refresh failures (see
    /// [`MaintenanceCounters::refresh_strikes`]).
    pub refresh_strikes: u32,
    /// Auto-refresh opportunities skipped inside a backoff window.
    pub backoff_skips: u64,
    /// The database is serving on a drifting grid that repeated
    /// refresh attempts failed to rebuild
    /// ([`DEGRADED_AFTER_STRIKES`] consecutive failures). Cleared by
    /// the next successful refresh.
    pub refresh_degraded: bool,
}

impl MaintenanceStats {
    /// Free positions left before an append overflows the grid.
    pub fn slack_remaining(&self) -> u64 {
        self.grid_capacity.saturating_sub(self.occupied)
    }

    /// Whether the next auto-refresh check would fire.
    pub fn over_threshold(&self) -> bool {
        self.drift_threshold.is_some_and(|t| self.drift > t)
    }
}
