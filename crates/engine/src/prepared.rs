//! Prepared queries: canonical twig interning and the epoch-validated
//! two-tier serving cache.
//!
//! Serving workloads repeat the same queries with trivially different
//! spellings — reordered sibling branches, whitespace variants, `/a//b`
//! versus `a//b`. A cache keyed by the raw string treats each spelling
//! as a distinct query; this module keys on the query's *canonical
//! identity* instead:
//!
//! 1. **Canonicalization** ([`TwigNode::canonicalize`]): predicates
//!    normalize, sibling branches sort — equivalent spellings become the
//!    same value, and because every evaluation then runs on that one
//!    ordering, their estimates are bit-identical, not merely close.
//! 2. **Interning** ([`TwigInterner`]): canonical twigs hash-cons to a
//!    stable [`TwigId`]. Identity is structural (`Eq`/`Hash` on the
//!    twig), so distinct queries can never collide. An id, once handed
//!    out, always names the same twig; identities are released (never
//!    reused) once no cached state references them, so the interner
//!    stays bounded by the cache, not by query history.
//! 3. **The two-tier cache** ([`PreparedCache`]): tier 1 maps query
//!    strings to their [`PreparedQuery`] under a bounded **CLOCK**
//!    sweep (query strings embed user-supplied values, so this
//!    dimension is unbounded; a hit sets a reference bit, the eviction
//!    hand clears bits and takes the first unreferenced slot — O(1)
//!    amortized, where the old LRU min-scan paid O(entries) per
//!    eviction under sustained distinct-query churn); tier 2 maps
//!    [`TwigId`]s to the one shared entry, so two spellings of a query
//!    share one prepared state and an epoch bump refreshes an entry
//!    once, not once per spelling.
//!
//! A [`PreparedQuery`] carries everything the front half of the pipeline
//! derives: the canonical twig, the leaf summary-resolution results, the
//! lazily memoized cheapest plan (filled by the
//! [`crate::planner::Planner`] on first use), and the **epoch** of the
//! database state it was prepared under. Lookups validate the epoch:
//! a hit under the current epoch returns in two atomic operations and a
//! map probe with **zero allocations** (enforced by
//! `tests/alloc_discipline.rs`); a stale entry is transparently
//! re-prepared from its interned twig — no re-parse — and can therefore
//! never be served (`tests/prepared_pipeline.rs` proves it).

use crate::cost::CostedPlan;
use crate::error::Result;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use xmlest_core::TwigNode;
use xmlest_xobs::{Counter, EventKind, Recorder};

/// Stable identity of one canonical twig within a database. Ids are
/// never reused: an id always names the same canonical pattern, even
/// after the prepared state it indexes has been evicted or re-prepared.
/// (An identity whose cached state is fully evicted is *released* — a
/// later appearance of the same pattern interns to a fresh id — so the
/// interner's footprint tracks the bounded cache, not query history.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TwigId(u64);

impl std::fmt::Display for TwigId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Hash-consing store of canonical twigs. Structural `Eq`/`Hash` on
/// [`TwigNode`] makes identity exact — no string keys, no collisions.
/// Storage is exactly the live-identity map (the map key *is* the
/// shared `Arc`); released identities leave nothing behind, and the
/// id counter is a `u64` that can never realistically wrap.
#[derive(Debug, Default)]
struct TwigInterner {
    inner: RwLock<InternerInner>,
}

#[derive(Debug, Default)]
struct InternerInner {
    ids: HashMap<Arc<TwigNode>, TwigId>,
    /// Next id to issue — monotonic, never reused.
    next: u64,
}

impl TwigInterner {
    /// Interns an **already canonical** twig, returning its stable id
    /// and the shared allocation.
    fn intern(&self, canonical: TwigNode) -> (TwigId, Arc<TwigNode>) {
        {
            let inner = self.inner.read().expect("twig interner lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
            if let Some((twig, &id)) = inner.ids.get_key_value(&canonical) {
                return (id, twig.clone());
            }
        }
        let mut inner = self.inner.write().expect("twig interner lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
        if let Some((twig, &id)) = inner.ids.get_key_value(&canonical) {
            return (id, twig.clone());
        }
        let id = TwigId(inner.next);
        inner.next += 1;
        let twig = Arc::new(canonical);
        inner.ids.insert(twig.clone(), id);
        (id, twig)
    }

    /// Releases an identity whose cached state is fully gone; its
    /// allocations drop with the last outstanding `Arc`, and a later
    /// appearance of the same pattern interns to a fresh id. No-op
    /// unless the map still binds exactly this twig to this id (guards
    /// racing release/re-intern).
    fn release(&self, id: TwigId, twig: &Arc<TwigNode>) {
        let mut inner = self.inner.write().expect("twig interner lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
        if inner.ids.get(twig.as_ref()) == Some(&id) {
            inner.ids.remove(twig.as_ref());
        }
    }

    /// Number of live (unreleased) identities.
    fn len(&self) -> usize {
        self.inner.read().expect("twig interner lock").ids.len() // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
    }
}

/// One pattern-node predicate's resolution against the summaries,
/// computed at prepare time. Resolving up front means a warm estimate
/// can no longer fail on an unknown predicate — errors surface at
/// [`PreparedQuery`] construction — and gives EXPLAIN-style consumers
/// the per-node cardinalities without re-deriving them.
#[derive(Debug, Clone)]
pub struct LeafResolution {
    /// Rendering of the pattern-node predicate, pre-order.
    pub pred: String,
    /// Estimated match count of the node's predicate under the epoch
    /// this query was prepared for.
    pub count: f64,
}

/// A fully prepared query: the canonical twig, its interned identity,
/// the leaf resolutions, the epoch they are valid for, and a slot for
/// the memoized cheapest plan. Everything downstream — `estimate`,
/// `estimate_batch`, plan execution — consumes one of these.
#[derive(Debug)]
pub struct PreparedQuery {
    id: TwigId,
    twig: Arc<TwigNode>,
    epoch: u64,
    /// Process-unique id of the [`PreparedCache`] that issued this
    /// entry — [`TwigId`]s are only meaningful within their own cache,
    /// so refresh paths must not trust a foreign entry's id.
    cache_id: u64,
    leaves: Vec<LeafResolution>,
    /// Cheapest costed plan, filled by the planner on first use (`None`
    /// inside the lock marks a single-node pattern with no edges to
    /// plan). Write-once: plans are deterministic per (twig, epoch), so
    /// a racing double-compute resolves to identical values.
    plan: OnceLock<Option<Arc<CostedPlan>>>,
    /// Full ranked plan list (cheapest first), filled on first EXPLAIN
    /// use — repeated `explain`-style calls skip re-enumeration. An
    /// empty list marks an edgeless pattern. Same write-once race
    /// resolution as `plan`; invalidated with the entry on epoch bumps,
    /// so the ranking is memoized per (TwigId, epoch).
    ranked: OnceLock<Arc<Vec<CostedPlan>>>,
}

impl PreparedQuery {
    pub(crate) fn new(
        id: TwigId,
        twig: Arc<TwigNode>,
        epoch: u64,
        leaves: Vec<LeafResolution>,
    ) -> Self {
        PreparedQuery {
            id,
            twig,
            epoch,
            cache_id: 0,
            leaves,
            plan: OnceLock::new(),
            ranked: OnceLock::new(),
        }
    }

    /// Whether this entry was issued by the given cache (the only
    /// context its [`TwigId`] is meaningful in).
    pub(crate) fn issued_by(&self, cache: &PreparedCache) -> bool {
        self.cache_id == cache.cache_id
    }

    /// Interned identity of the canonical twig.
    pub fn id(&self) -> TwigId {
        self.id
    }

    /// The canonical pattern (shared with the interner).
    pub fn twig(&self) -> &Arc<TwigNode> {
        &self.twig
    }

    /// Database epoch this entry was prepared under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-pattern-node summary resolutions, pre-order over the
    /// canonical twig.
    pub fn leaves(&self) -> &[LeafResolution] {
        &self.leaves
    }

    /// The memoized cheapest plan, if the planner has run on this entry
    /// (`None` both before planning and for edgeless patterns).
    pub fn cached_plan(&self) -> Option<&Arc<CostedPlan>> {
        self.plan.get().and_then(Option::as_ref)
    }

    /// Whether planning has run (even if it found nothing to plan).
    pub fn is_planned(&self) -> bool {
        self.plan.get().is_some()
    }

    pub(crate) fn plan_slot(&self) -> &OnceLock<Option<Arc<CostedPlan>>> {
        &self.plan
    }

    /// The memoized ranked plan list, if an EXPLAIN-style consumer has
    /// computed it (empty list = edgeless pattern).
    pub fn cached_ranked_plans(&self) -> Option<&Arc<Vec<CostedPlan>>> {
        self.ranked.get()
    }

    pub(crate) fn ranked_slot(&self) -> &OnceLock<Arc<Vec<CostedPlan>>> {
        &self.ranked
    }
}

/// Counter snapshot of a [`PreparedCache`] — the service's
/// observability surface, also reachable as the `cache` field of the
/// unified [`crate::Telemetry`] snapshot.
///
/// **Reset contract:** `hits`/`misses`/`invalidations`/`evictions` are
/// monotonic for the life of the owning database — they are backed by
/// the `xobs` registry and are never reset (rate consumers diff
/// successive snapshots). `entries`/`canonical`/`interned`/`planned`/
/// `ranked` are level gauges of live cache population and move in both
/// directions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Tier-1/tier-2 lookups answered by an epoch-valid entry.
    pub hits: u64,
    /// Lookups that had no entry at all (parse + resolve ran).
    pub misses: u64,
    /// Lookups that found an entry from an older epoch (re-prepared
    /// from the interned twig; the stale entry was never served).
    pub invalidations: u64,
    /// Tier-1 entries dropped by the CLOCK bound.
    pub evictions: u64,
    /// Live tier-1 (query-string) entries.
    pub entries: usize,
    /// Live tier-2 (canonical) entries.
    pub canonical: usize,
    /// Live interned identities (released when their cached state is
    /// fully evicted).
    pub interned: usize,
    /// Live entries whose cheapest plan is memoized.
    pub planned: usize,
    /// Live entries whose full ranked plan list (EXPLAIN) is memoized.
    pub ranked: usize,
}

/// Most query strings tier 1 will hold before CLOCK eviction starts.
pub(crate) const PREPARED_CACHE_CAP: usize = 4096;

/// Tier-1 slot: the entry plus its CLOCK reference bit. A warm hit
/// sets the bit (one relaxed store under the read lock — still zero
/// allocations); the sweeping hand clears it and evicts slots found
/// unreferenced.
#[derive(Debug)]
struct PathSlot {
    entry: Arc<PreparedQuery>,
    referenced: AtomicBool,
}

/// Tier 1: the query-string map plus the CLOCK ring over its keys.
/// Invariant: `ring` holds exactly `map`'s keys, each once; `hand`
/// indexes `ring` (0 when empty). Eviction is O(1) amortized — the
/// hand sweeps at most one full revolution (clearing reference bits)
/// before it finds a victim, instead of the old O(entries) min-scan
/// per eviction.
#[derive(Debug, Default)]
struct PathTier {
    map: HashMap<String, PathSlot>,
    ring: Vec<String>,
    hand: usize,
}

/// Tier-2 slot: the entry plus how many tier-1 slots reference its id.
#[derive(Debug)]
struct IdSlot {
    entry: Arc<PreparedQuery>,
    pins: u32,
}

/// The two-tier prepared-query cache. See the module docs for the
/// design; lock order is always tier 1 before tier 2.
#[derive(Debug)]
pub(crate) struct PreparedCache {
    interner: TwigInterner,
    by_path: RwLock<PathTier>,
    by_id: RwLock<HashMap<TwigId, IdSlot>>,
    /// Process-unique cache identity, stamped onto every issued entry;
    /// refresh paths use it to detect entries from another database.
    cache_id: u64,
    cap: usize,
    /// Memoized frozen path→twig view handed to serving snapshots;
    /// rebuilt lazily after any change to the *path set* (new insert or
    /// eviction — an epoch refresh keeps the twig, so the view stays
    /// valid). Shared by pointer: every snapshot published between two
    /// path-set changes holds the same map.
    frozen: RwLock<Option<crate::snapshot::FrozenTwigs>>,
    /// Observability handle; evictions journal through it. Counters
    /// below are registered in its typed registry, so the unified
    /// telemetry snapshot and [`PreparedCache::stats`] read the same
    /// cells.
    obs: Recorder,
    hits: Counter,
    misses: Counter,
    invalidations: Counter,
    evictions: Counter,
}

impl Default for PreparedCache {
    fn default() -> Self {
        PreparedCache::with_capacity(PREPARED_CACHE_CAP)
    }
}

/// How a traced estimate's query string met the prepared cache; the
/// `cache_tier` of a [`crate::TraceReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Tier-1 hit: the exact query string was resident under the
    /// current epoch — the zero-allocation warm path.
    PathHit,
    /// The string was resident but prepared under an older epoch; it
    /// was re-prepared from its interned twig (no re-parse).
    Stale,
    /// No tier-1 entry: full parse + canonicalize + resolve ran (a
    /// canonically equivalent spelling may still have shared tier-2
    /// state).
    Miss,
}

impl CacheTier {
    /// Stable name for exporters and reports.
    pub fn name(&self) -> &'static str {
        match self {
            CacheTier::PathHit => "path-hit",
            CacheTier::Stale => "stale",
            CacheTier::Miss => "miss",
        }
    }
}

/// Builds one entry's prepared state (leaf resolution against the
/// current summaries); supplied by the database layer.
pub(crate) type ResolveFn<'f> = &'f dyn Fn(TwigId, &Arc<TwigNode>) -> Result<PreparedQuery>;

impl PreparedCache {
    pub(crate) fn with_capacity(cap: usize) -> Self {
        PreparedCache::with_recorder(cap, &Recorder::new())
    }

    /// A cache whose counters live in `rec`'s typed registry and whose
    /// evictions journal through it — the database constructor path.
    pub(crate) fn with_recorder(cap: usize, rec: &Recorder) -> Self {
        static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(1);
        PreparedCache {
            interner: TwigInterner::default(),
            by_path: RwLock::new(PathTier::default()),
            by_id: RwLock::new(HashMap::new()),
            cache_id: NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed),
            cap: cap.max(1),
            frozen: RwLock::new(None),
            obs: rec.clone(),
            hits: rec.counter(
                "xmlest_cache_hits_total",
                "Prepared-cache lookups answered by an epoch-valid entry.",
            ),
            misses: rec.counter(
                "xmlest_cache_misses_total",
                "Prepared-cache lookups with no entry (full parse + resolve ran).",
            ),
            invalidations: rec.counter(
                "xmlest_cache_invalidations_total",
                "Prepared-cache entries found stale and re-prepared from their interned twig.",
            ),
            evictions: rec.counter(
                "xmlest_cache_evictions_total",
                "Tier-1 prepared-cache entries dropped by the CLOCK bound.",
            ),
        }
    }

    /// Resolves a query string to its prepared entry under `epoch`.
    ///
    /// The warm path — entry present, epoch matches — is a read-locked
    /// map probe, a reference-bit store and an `Arc` clone: **zero
    /// allocations**. A stale entry re-prepares from its interned twig
    /// (no re-parse); an absent one parses, canonicalizes and interns
    /// first.
    pub(crate) fn get_or_prepare_path(
        &self,
        path: &str,
        epoch: u64,
        parse_canonical: impl FnOnce() -> Result<TwigNode>,
        resolve: ResolveFn<'_>,
    ) -> Result<Arc<PreparedQuery>> {
        let stale = {
            let tier = self.by_path.read().expect("prepared cache lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
            match tier.map.get(path) {
                Some(slot) if slot.entry.epoch == epoch => {
                    slot.referenced.store(true, Ordering::Relaxed);
                    self.hits.inc();
                    return Ok(slot.entry.clone());
                }
                Some(slot) => Some(slot.entry.clone()),
                None => None,
            }
        };
        let (id, twig) = match &stale {
            Some(entry) => {
                self.invalidations.inc();
                (entry.id, entry.twig.clone())
            }
            None => {
                self.misses.inc();
                self.interner.intern(parse_canonical()?)
            }
        };
        let entry = self.get_fresh_by_id(id, &twig, epoch, resolve)?;
        self.install_path(path, entry.clone());
        Ok(entry)
    }

    /// Side-effect-free classification of how a lookup of `path` under
    /// `epoch` *would* meet tier 1 — no counters move, no reference bit
    /// is set. Feeds [`crate::TraceReport::cache_tier`].
    pub(crate) fn classify_path(&self, path: &str, epoch: u64) -> CacheTier {
        let tier = self.by_path.read().expect("prepared cache lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
        match tier.map.get(path) {
            Some(slot) if slot.entry.epoch == epoch => CacheTier::PathHit,
            Some(_) => CacheTier::Stale,
            None => CacheTier::Miss,
        }
    }

    /// Resolves a pre-built pattern to its prepared entry under `epoch`.
    /// Canonicalizes and interns, then shares tier 2 with the string
    /// path — a spelling previously seen as a string reuses its entry.
    /// Twig-keyed entries are not pinned by any tier-1 slot; they are
    /// swept (cheapest-plan memo included) when tier 2 outgrows twice
    /// the tier-1 bound.
    pub(crate) fn get_or_prepare_twig(
        &self,
        twig: &TwigNode,
        epoch: u64,
        resolve: ResolveFn<'_>,
    ) -> Result<Arc<PreparedQuery>> {
        let (id, twig) = self.interner.intern(twig.canonicalize());
        self.get_fresh_by_id(id, &twig, epoch, resolve)
    }

    /// An epoch-valid entry for an already-interned id, re-preparing a
    /// stale or absent one. This is also the refresh path for callers
    /// holding an entry across a collection mutation.
    pub(crate) fn get_fresh_by_id(
        &self,
        id: TwigId,
        twig: &Arc<TwigNode>,
        epoch: u64,
        resolve: ResolveFn<'_>,
    ) -> Result<Arc<PreparedQuery>> {
        {
            let map = self.by_id.read().expect("prepared cache lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
            if let Some(slot) = map.get(&id) {
                if slot.entry.epoch == epoch {
                    return Ok(slot.entry.clone());
                }
            }
        }
        let mut fresh = resolve(id, twig)?;
        fresh.cache_id = self.cache_id;
        let built = Arc::new(fresh);
        let mut map = self.by_id.write().expect("prepared cache lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
        match map.entry(id) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if o.get().entry.epoch == epoch {
                    // Racing refresh won; both entries are identical.
                    return Ok(o.get().entry.clone());
                }
                o.get_mut().entry = built.clone();
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(IdSlot {
                    entry: built.clone(),
                    pins: 0,
                });
            }
        }
        // Bound the unpinned (twig-keyed) population, releasing the
        // swept entries' interned identities along with their prepared
        // state.
        if map.len() > self.cap * 2 {
            let mut dropped: Vec<Arc<PreparedQuery>> = Vec::new();
            map.retain(|_, slot| {
                if slot.pins > 0 {
                    true
                } else {
                    dropped.push(slot.entry.clone());
                    false
                }
            });
            // Keep the caller's entry reachable even when unpinned.
            map.entry(id).or_insert(IdSlot {
                entry: built.clone(),
                pins: 0,
            });
            for entry in dropped {
                if entry.id != id {
                    self.interner.release(entry.id, entry.twig());
                }
            }
        }
        Ok(built)
    }

    /// Installs (or refreshes) a tier-1 slot, evicting via the CLOCK
    /// hand when the bound is hit. Cold path only — allocation is fine
    /// here, and eviction is O(1) amortized: the hand clears reference
    /// bits as it sweeps and takes the first unreferenced slot, instead
    /// of scanning every entry for the LRU minimum.
    fn install_path(&self, path: &str, entry: Arc<PreparedQuery>) {
        let mut tier = self.by_path.write().expect("prepared cache lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
        if let Some(slot) = tier.map.get_mut(path) {
            // Epoch refresh (same canonical id — paths parse
            // deterministically), or a racing insert of the same path.
            slot.entry = entry;
            slot.referenced.store(true, Ordering::Relaxed);
            return;
        }
        // Pin the incoming entry *before* evicting: if the victim
        // shares its id (another spelling of the same query), unpinning
        // the victim first would drop the shared tier-2 state and
        // release the interned identity out from under us.
        self.pin(&entry);
        let slot = PathSlot {
            entry,
            // New entries start unreferenced: one full hand revolution
            // without a hit makes them eligible, which is what keeps a
            // hot working set resident through sustained distinct-query
            // churn.
            referenced: AtomicBool::new(false),
        };
        if tier.map.len() < self.cap {
            tier.ring.push(path.to_owned());
            tier.map.insert(path.to_owned(), slot);
            drop(tier);
            self.invalidate_frozen();
            return;
        }
        // Sweep: clear reference bits until an unreferenced slot turns
        // up (bounded by one revolution plus one step), evict it, and
        // reuse its ring position for the incoming key.
        let t = &mut *tier;
        loop {
            let hand = t.hand;
            let probed = t.map.get(&t.ring[hand]).expect("ring key is mapped"); // xlint: allow(no-panic, "ring and map are mutated together; every ring key is mapped")
            if probed.referenced.swap(false, Ordering::Relaxed) {
                t.hand = (hand + 1) % t.ring.len();
                continue;
            }
            let victim_key = std::mem::replace(&mut t.ring[hand], path.to_owned());
            let victim = t.map.remove(&victim_key).expect("just observed"); // xlint: allow(no-panic, "key was probed in the map immediately above under the same lock")
            self.evictions.inc();
            self.obs.event(
                EventKind::CacheEviction,
                victim.entry.epoch,
                self.evictions.value(),
                0,
            );
            t.map.insert(path.to_owned(), slot);
            t.hand = (hand + 1) % t.ring.len();
            drop(tier);
            self.unpin(victim.entry.id);
            self.invalidate_frozen();
            return;
        }
    }

    fn pin(&self, entry: &Arc<PreparedQuery>) {
        let mut map = self.by_id.write().expect("prepared cache lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
        map.entry(entry.id)
            .or_insert_with(|| IdSlot {
                entry: entry.clone(),
                pins: 0,
            })
            .pins += 1;
    }

    /// Drops one tier-1 reference to an id; the last reference removes
    /// the tier-2 entry *and* releases the interned identity, so the
    /// interner's footprint follows the bounded cache (lock order:
    /// tier 2, then the innermost interner lock).
    fn unpin(&self, id: TwigId) {
        let mut map = self.by_id.write().expect("prepared cache lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
        if let Some(slot) = map.get_mut(&id) {
            slot.pins = slot.pins.saturating_sub(1);
            if slot.pins == 0 {
                let slot = map.remove(&id).expect("slot just observed"); // xlint: allow(no-panic, "id was found in the map immediately above under the same lock")
                self.interner.release(id, slot.entry.twig());
            }
        }
    }

    /// The frozen path→canonical-twig view snapshots carry: memoized
    /// until the path set changes, so successive publishes between two
    /// inserts/evictions share one map by pointer. Benignly racy: a
    /// concurrently-inserted path may be missing from the view (the
    /// snapshot falls back to parsing — paths parse deterministically,
    /// so the estimate is bit-identical either way), never wrong.
    pub(crate) fn frozen_twigs(&self) -> crate::snapshot::FrozenTwigs {
        let probe = self.frozen.read().expect("prepared cache lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
        if let Some(frozen) = probe.as_ref() {
            return frozen.clone();
        }
        drop(probe);
        let built: crate::snapshot::FrozenTwigs = {
            let tier = self.by_path.read().expect("prepared cache lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
            Arc::new(
                tier.map
                    .iter()
                    .map(|(path, slot)| (path.clone(), slot.entry.twig().clone()))
                    .collect(),
            )
        };
        *self.frozen.write().expect("prepared cache lock") = Some(built.clone()); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
        built
    }

    /// Drops the memoized frozen view; the next [`frozen_twigs`] call
    /// rebuilds it from the live tier-1 map. Taken alone — never nested
    /// inside the tier locks.
    ///
    /// [`frozen_twigs`]: PreparedCache::frozen_twigs
    fn invalidate_frozen(&self) {
        *self.frozen.write().expect("prepared cache lock") = None; // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
    }

    /// Number of live tier-1 (query-string) entries.
    pub(crate) fn len(&self) -> usize {
        self.by_path.read().expect("prepared cache lock").map.len() // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
    }

    /// Counter snapshot. Locks are taken one at a time, tier 1 first —
    /// never nested — so a snapshot can't deadlock against a concurrent
    /// `install_path` (which holds tier 1 while pinning in tier 2).
    pub(crate) fn stats(&self) -> CacheStats {
        let entries = self.by_path.read().expect("prepared cache lock").map.len(); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
        let by_id = self.by_id.read().expect("prepared cache lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
        CacheStats {
            hits: self.hits.value(),
            misses: self.misses.value(),
            invalidations: self.invalidations.value(),
            evictions: self.evictions.value(),
            entries,
            canonical: by_id.len(),
            interned: self.interner.len(),
            planned: by_id.values().filter(|s| s.entry.is_planned()).count(),
            ranked: by_id
                .values()
                .filter(|s| s.entry.cached_ranked_plans().is_some())
                .count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlest_query::parse_path;

    fn resolve_ok(id: TwigId, twig: &Arc<TwigNode>) -> Result<PreparedQuery> {
        Ok(PreparedQuery::new(id, twig.clone(), 7, Vec::new()))
    }

    fn prepare(cache: &PreparedCache, path: &str, epoch: u64) -> Arc<PreparedQuery> {
        let resolve = move |id: TwigId, twig: &Arc<TwigNode>| {
            Ok(PreparedQuery::new(id, twig.clone(), epoch, Vec::new()))
        };
        cache
            .get_or_prepare_path(
                path,
                epoch,
                || {
                    parse_path(path)
                        .map(|t| t.canonicalize())
                        .map_err(Into::into)
                },
                &resolve,
            )
            .unwrap()
    }

    #[test]
    fn interner_hash_conses_canonical_twigs() {
        let interner = TwigInterner::default();
        let a = parse_path("//a//b[.//c][.//d]").unwrap().canonicalize();
        let b = parse_path("//a//b[.//d][.//c]").unwrap().canonicalize();
        let (ia, ta) = interner.intern(a);
        let (ib, tb) = interner.intern(b);
        assert_eq!(ia, ib);
        assert!(Arc::ptr_eq(&ta, &tb));
        let (ic, _) = interner.intern(parse_path("//a//b").unwrap().canonicalize());
        assert_ne!(ia, ic);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn spellings_share_one_entry() {
        let cache = PreparedCache::with_capacity(8);
        let e1 = prepare(&cache, "//a//b[.//c][.//d]", 1);
        let e2 = prepare(&cache, " //a//b[ .//d ][ .//c ] ", 1);
        assert!(Arc::ptr_eq(&e1, &e2), "spellings must share prepared state");
        let s = cache.stats();
        assert_eq!(s.entries, 2, "both strings cached");
        assert_eq!(s.canonical, 1, "one canonical entry");
        assert_eq!(s.misses, 2);
        // Warm hits on both spellings.
        prepare(&cache, "//a//b[.//c][.//d]", 1);
        prepare(&cache, " //a//b[ .//d ][ .//c ] ", 1);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn epoch_mismatch_re_prepares_without_reparse() {
        let cache = PreparedCache::with_capacity(8);
        let old = prepare(&cache, "//a//b", 1);
        assert_eq!(old.epoch(), 1);
        let fresh = prepare(&cache, "//a//b", 2);
        assert_eq!(fresh.epoch(), 2);
        assert_eq!(fresh.id(), old.id(), "identity survives the epoch bump");
        assert!(!Arc::ptr_eq(&old, &fresh));
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.canonical, 1, "stale entry replaced, not duplicated");
    }

    #[test]
    fn lru_evicts_oldest_string() {
        let cache = PreparedCache::with_capacity(2);
        prepare(&cache, "//a//b", 1);
        prepare(&cache, "//a//c", 1);
        prepare(&cache, "//a//b", 1); // refresh b's stamp
        prepare(&cache, "//a//d", 1); // evicts //a//c
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        // b stayed (hit), c was evicted (miss again), d present.
        prepare(&cache, "//a//b", 1);
        assert_eq!(cache.stats().hits, 2);
        prepare(&cache, "//a//c", 1);
        assert_eq!(cache.stats().misses, 4, "b, c, d cold + c re-missed");
    }

    #[test]
    fn eviction_drops_unpinned_canonical_state() {
        let cache = PreparedCache::with_capacity(1);
        prepare(&cache, "//a//b", 1);
        assert_eq!(cache.stats().canonical, 1);
        prepare(&cache, "//a//c", 1); // evicts //a//b, unpins its entry
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.canonical, 1, "unpinned prepared state dropped");
        assert_eq!(s.interned, 1, "evicted identity released with it");
        // A re-interned pattern gets a fresh id and works as before.
        let back = prepare(&cache, "//a//b", 1);
        assert_eq!(back.twig().to_string(), "a[//b]");
        assert_eq!(cache.stats().interned, 1);
    }

    /// Evicting one spelling of a query must not tear down state shared
    /// with the spelling being inserted (pin-before-evict): the
    /// canonical entry, its plan memo slot and the interned identity
    /// all survive.
    #[test]
    fn evicting_a_sibling_spelling_keeps_shared_state() {
        let cache = PreparedCache::with_capacity(1);
        let a = prepare(&cache, "//a//b[.//c][.//d]", 1);
        // An equivalent spelling evicts the first string but shares its
        // canonical identity.
        let b = prepare(&cache, "//a//b[.//d][.//c]", 1);
        assert!(Arc::ptr_eq(&a, &b), "shared entry must survive eviction");
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.canonical, 1, "tier-2 entry kept alive by new pin");
        assert_eq!(s.interned, 1, "identity not released while pinned");
        // A third spelling still resolves to the very same entry.
        let c = prepare(&cache, " //a//b[ .//d ][ .//c ]", 1);
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().interned, 1);
    }

    /// Sustained distinct-query churn (the adversarial serving case the
    /// CLOCK bound exists for) must keep every tier — strings, canonical
    /// entries, interned identities — bounded.
    #[test]
    fn distinct_query_churn_stays_bounded() {
        let cache = PreparedCache::with_capacity(4);
        let paths: Vec<String> = (0..200).map(|i| format!("//a//p{i}")).collect();
        for p in &paths {
            prepare(&cache, p, 1);
        }
        let s = cache.stats();
        assert_eq!(s.entries, 4);
        assert_eq!(s.canonical, 4);
        assert_eq!(s.interned, 4, "interner must not grow with history");
        assert_eq!(s.evictions, 196);
    }

    /// The CLOCK hand must keep a hot working set resident through
    /// sustained distinct-query churn (the workload the old LRU
    /// min-scan paid O(entries) per eviction for), with every counter
    /// staying exact: hits + misses == lookups, and evictions ==
    /// insertions − capacity.
    #[test]
    fn clock_keeps_hot_set_through_churn_with_exact_counters() {
        let cap = 8;
        let cache = PreparedCache::with_capacity(cap);
        let hot: Vec<String> = (0..4).map(|i| format!("//hot//h{i}")).collect();
        let mut lookups = 0u64;
        let mut distinct = 0u64;
        for round in 0..200 {
            // Touch the hot set every round so its reference bits stay
            // set when the hand sweeps past.
            for p in &hot {
                prepare(&cache, p, 1);
                lookups += 1;
            }
            // Four distinct cold queries churn the remaining slots.
            for k in 0..4 {
                prepare(&cache, &format!("//cold//c{round}x{k}"), 1);
                lookups += 1;
                distinct += 1;
            }
        }
        let s = cache.stats();
        assert_eq!(s.entries, cap, "tier 1 stays at capacity");
        assert_eq!(s.canonical, cap, "tier 2 follows the pins");
        assert_eq!(s.interned, cap, "interner follows the cache");
        // Counter exactness: every lookup is a hit or a miss, every
        // miss inserted, every insertion beyond capacity evicted.
        assert_eq!(s.hits + s.misses, lookups);
        let insertions = s.misses;
        assert_eq!(s.evictions, insertions - cap as u64);
        // The hot set was never evicted: 4 cold misses only, per round,
        // plus the first-round hot misses.
        assert_eq!(s.misses, distinct + hot.len() as u64);
        for p in &hot {
            let before = cache.stats().hits;
            prepare(&cache, p, 1);
            assert_eq!(cache.stats().hits, before + 1, "{p} must be resident");
        }
    }

    #[test]
    fn twig_api_shares_tier_two() {
        let cache = PreparedCache::with_capacity(8);
        let from_path = prepare(&cache, "//a//b[.//c][.//d]", 3);
        let twig = parse_path("//a//b[.//d][.//c]").unwrap();
        let resolve =
            |id: TwigId, t: &Arc<TwigNode>| Ok(PreparedQuery::new(id, t.clone(), 3, Vec::new()));
        let from_twig = cache.get_or_prepare_twig(&twig, 3, &resolve).unwrap();
        assert!(Arc::ptr_eq(&from_path, &from_twig));
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let cache = PreparedCache::with_capacity(8);
        let resolve: ResolveFn<'_> = &resolve_ok;
        for _ in 0..2 {
            let err = cache.get_or_prepare_path(
                "//a[",
                7,
                || {
                    parse_path("//a[")
                        .map(|t| t.canonicalize())
                        .map_err(Into::into)
                },
                resolve,
            );
            assert!(err.is_err());
        }
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.misses, 2, "errors re-resolve every time");
    }
}
