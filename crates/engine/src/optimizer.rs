//! The cost-based optimizer facade: rank connected join orders by
//! estimated cost, pick the cheapest — then optionally execute and
//! report estimated vs actual cardinalities (EXPLAIN ANALYZE style).
//!
//! The heavy lifting lives in [`crate::planner::Planner`]: queries
//! resolve through the prepared-query cache, the cheapest plan is
//! memoized per canonical twig and database epoch, and the cost
//! workspace is shared across queries. Every entry point canonicalizes
//! its pattern, so plan step indices refer to the **canonical**
//! pre-order flattening (sibling branches sorted by axis and rendering),
//! whatever spelling the caller used — pass plans produced by this
//! optimizer back to its `execute*` methods and the numbering always
//! matches.

use crate::cost::CostedPlan;
use crate::db::Database;
use crate::error::Result;
use crate::exec::{execute_plan, execute_plan_with, Execution};
use crate::plan::{FlatTwig, Plan};
use crate::planner::Planner;
use crate::prepared::PreparedQuery;
use std::fmt::Write;
use std::sync::Arc;
use xmlest_core::TwigNode;

/// A chosen plan with its estimated and (optionally) measured behaviour.
#[derive(Debug, Clone)]
pub struct ExplainedPlan {
    pub twig: FlatTwig,
    pub costed: CostedPlan,
    pub execution: Option<Execution>,
}

impl ExplainedPlan {
    /// Human-readable EXPLAIN output: one line per join step with
    /// estimated and actual intermediate sizes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "plan cost (estimated): {:.1}", self.costed.total);
        for (i, step) in self.costed.plan.steps.iter().enumerate() {
            let (p, c, axis) = self.twig.edges[step.0];
            let axis_str = match axis {
                xmlest_core::Axis::Descendant => "//",
                xmlest_core::Axis::Child => "/",
            };
            let actual = self
                .execution
                .as_ref()
                .map(|e| e.step_pairs[i].to_string())
                .unwrap_or_else(|| "-".into());
            let algo = match self.costed.step_algos[i] {
                crate::plan::JoinAlgorithm::Structural => "structural",
                crate::plan::JoinAlgorithm::Navigational => "navigational",
            };
            let _ = writeln!(
                out,
                "  step {i}: join {} {axis_str} {}  [{algo}] est_out={:.1} actual_pairs={actual}",
                self.twig.preds[p], self.twig.preds[c], self.costed.step_outputs[i],
            );
        }
        out
    }
}

/// The optimizer facade over a database.
pub struct Optimizer<'a> {
    planner: Planner<'a>,
}

impl<'a> Optimizer<'a> {
    /// An optimizer over `db`'s planner.
    pub fn new(db: &'a Database) -> Self {
        Optimizer {
            planner: db.planner(),
        }
    }

    /// The planning layer this optimizer fronts.
    pub fn planner(&self) -> &Planner<'a> {
        &self.planner
    }

    fn db(&self) -> &'a Database {
        self.planner.database()
    }

    /// All plans for a twig, each priced by the estimator, cheapest
    /// first — the full diagnostic ranking (uncached; use
    /// [`Optimizer::best_plan`] for the memoized winner or
    /// [`Optimizer::ranked_plans`] for the memoized ranking).
    pub fn costed_plans(&self, twig: &TwigNode) -> Result<Vec<CostedPlan>> {
        self.planner.costed_plans(twig)
    }

    /// The full ranked plan list, memoized per (canonical twig,
    /// database epoch): repeated EXPLAIN calls — from any spelling —
    /// share one `Arc`d ranking until a collection mutation bumps the
    /// epoch.
    pub fn ranked_plans(&self, twig: &TwigNode) -> Result<Arc<Vec<CostedPlan>>> {
        let prepared = self.planner.prepare_twig(twig)?;
        self.planner.ranked_plans(&prepared)
    }

    /// The cheapest plan by estimated cost, memoized per canonical twig
    /// and database epoch: repeated calls — from any spelling of the
    /// pattern — share one `Arc`d plan until a collection mutation bumps
    /// the epoch.
    pub fn best_plan(&self, twig: &TwigNode) -> Result<Arc<CostedPlan>> {
        let prepared = self.planner.prepare_twig(twig)?;
        self.planner.best_plan(&prepared)
    }

    /// EXPLAIN: cheapest plan, optionally executed for actual numbers.
    /// Runs the full prepared pipeline — the query resolves through the
    /// shared cache and the plan memo.
    pub fn explain(&self, path: &str, analyze: bool) -> Result<ExplainedPlan> {
        let (prepared, costed) = self.planner.plan(path)?;
        let flat = FlatTwig::from_twig(prepared.twig());
        let execution = if analyze {
            Some(execute_plan_with(
                self.db(),
                &flat,
                &costed.plan,
                &costed.step_algos,
            )?)
        } else {
            None
        };
        Ok(ExplainedPlan {
            twig: flat,
            costed: (*costed).clone(),
            execution,
        })
    }

    /// Executes a specific plan with all-structural steps (for
    /// best-vs-worst comparisons independent of algorithm choice). The
    /// plan's step indices must refer to the canonical flattening —
    /// which every plan produced by this optimizer does.
    pub fn execute(&self, twig: &TwigNode, plan: &Plan) -> Result<Execution> {
        let flat = FlatTwig::from_twig(&twig.canonicalize());
        execute_plan(self.db(), &flat, plan)
    }

    /// Executes a costed plan honoring its per-step algorithm choices.
    pub fn execute_costed(&self, twig: &TwigNode, costed: &CostedPlan) -> Result<Execution> {
        let flat = FlatTwig::from_twig(&twig.canonicalize());
        execute_plan_with(self.db(), &flat, &costed.plan, &costed.step_algos)
    }

    /// Executes a prepared query end to end: refresh to the current
    /// epoch, take (or compute) the memoized cheapest plan, run it.
    pub fn execute_prepared(&self, prepared: &Arc<PreparedQuery>) -> Result<Execution> {
        let fresh = self.db().refresh_prepared(prepared)?;
        let costed = self.planner.best_plan(&fresh)?;
        let flat = FlatTwig::from_twig(fresh.twig());
        execute_plan_with(self.db(), &flat, &costed.plan, &costed.step_algos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use xmlest_core::SummaryConfig;
    use xmlest_query::parse_path;

    /// A document engineered so join order matters: many faculty//RA
    /// pairs, almost no faculty//TA pairs.
    fn skewed_db() -> Database {
        let mut xml = String::from("<department>");
        for i in 0..60 {
            xml.push_str("<faculty><name/>");
            for _ in 0..8 {
                xml.push_str("<RA/>");
            }
            if i == 0 {
                xml.push_str("<TA/>");
            }
            xml.push_str("</faculty>");
        }
        xml.push_str("</department>");
        Database::load_str(&xml, &SummaryConfig::paper_defaults().with_grid_size(10)).unwrap()
    }

    #[test]
    fn optimizer_prefers_selective_edge_first() {
        let db = skewed_db();
        let opt = Optimizer::new(&db);
        let twig = parse_path("//department//faculty[.//TA][.//RA]").unwrap();
        let best = opt.best_plan(&twig).unwrap();
        // The cheapest plan must start with the highly selective
        // faculty//TA edge. Canonical sibling order under faculty is
        // [RA, TA] (sorted by rendering), so in the canonical pre-order
        // flattening that edge has index 2.
        assert_eq!(best.plan.steps[0].0, 2, "best plan: {best:?}");
        // Memoized: a repeat call shares the same plan.
        let again = opt.best_plan(&twig).unwrap();
        assert!(Arc::ptr_eq(&best, &again));
    }

    #[test]
    fn estimated_order_matches_actual_order() {
        // The headline claim: ranking plans by estimated cost should
        // agree with ranking by actual cost, at least at the extremes.
        let db = skewed_db();
        let opt = Optimizer::new(&db);
        let twig = parse_path("//department//faculty[.//TA][.//RA]").unwrap();
        let costed = opt.costed_plans(&twig).unwrap();
        let best = costed.first().unwrap();
        let worst = costed.last().unwrap();
        let actual_best = opt.execute(&twig, &best.plan).unwrap().total_cost;
        let actual_worst = opt.execute(&twig, &worst.plan).unwrap().total_cost;
        assert!(
            actual_best < actual_worst,
            "estimated-best actual {actual_best} vs estimated-worst actual {actual_worst}"
        );
    }

    #[test]
    fn explain_renders_steps() {
        let db = skewed_db();
        let opt = Optimizer::new(&db);
        let explained = opt.explain("//faculty[.//TA][.//RA]", true).unwrap();
        let text = explained.render();
        assert!(text.contains("plan cost"));
        assert!(text.contains("step 0"));
        assert!(text.contains("actual_pairs="));
        // Without analyze, actuals are dashes.
        let explained = opt.explain("//faculty[.//TA][.//RA]", false).unwrap();
        assert!(explained.render().contains("actual_pairs=-"));
    }

    #[test]
    fn single_node_pattern_is_a_plan_error() {
        let db = skewed_db();
        let opt = Optimizer::new(&db);
        let twig = parse_path("//faculty").unwrap();
        assert!(matches!(opt.best_plan(&twig), Err(Error::Plan(_))));
    }
}
