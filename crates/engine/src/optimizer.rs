//! The cost-based optimizer: enumerate connected join orders, price each
//! with the estimator, pick the cheapest — then optionally execute and
//! report estimated vs actual cardinalities (EXPLAIN ANALYZE style).

use crate::cost::{cost_plan_with, CostWorkspace, CostedPlan};
use crate::db::Database;
use crate::error::{Error, Result};
use crate::exec::{execute_plan, execute_plan_with, Execution};
use crate::plan::{enumerate_plans, FlatTwig, Plan};
use std::fmt::Write;
use xmlest_core::TwigNode;
use xmlest_query::parse_path;

/// Upper bound on enumerated plans (twigs in the paper's experiments
/// have at most a handful of edges; 5040 covers 7 freely-ordered edges).
const PLAN_CAP: usize = 5040;

/// A chosen plan with its estimated and (optionally) measured behaviour.
#[derive(Debug, Clone)]
pub struct ExplainedPlan {
    pub twig: FlatTwig,
    pub costed: CostedPlan,
    pub execution: Option<Execution>,
}

impl ExplainedPlan {
    /// Human-readable EXPLAIN output: one line per join step with
    /// estimated and actual intermediate sizes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "plan cost (estimated): {:.1}", self.costed.total);
        for (i, step) in self.costed.plan.steps.iter().enumerate() {
            let (p, c, axis) = self.twig.edges[step.0];
            let axis_str = match axis {
                xmlest_core::Axis::Descendant => "//",
                xmlest_core::Axis::Child => "/",
            };
            let actual = self
                .execution
                .as_ref()
                .map(|e| e.step_pairs[i].to_string())
                .unwrap_or_else(|| "-".into());
            let algo = match self.costed.step_algos[i] {
                crate::plan::JoinAlgorithm::Structural => "structural",
                crate::plan::JoinAlgorithm::Navigational => "navigational",
            };
            let _ = writeln!(
                out,
                "  step {i}: join {} {axis_str} {}  [{algo}] est_out={:.1} actual_pairs={actual}",
                self.twig.preds[p], self.twig.preds[c], self.costed.step_outputs[i],
            );
        }
        out
    }
}

/// The optimizer facade over a database.
pub struct Optimizer<'a> {
    db: &'a Database,
}

impl<'a> Optimizer<'a> {
    pub fn new(db: &'a Database) -> Self {
        Optimizer { db }
    }

    /// All plans for a twig, each priced by the estimator, cheapest
    /// first.
    pub fn costed_plans(&self, twig: &TwigNode) -> Result<Vec<CostedPlan>> {
        let flat = FlatTwig::from_twig(twig);
        let plans = enumerate_plans(&flat, PLAN_CAP);
        if plans.is_empty() {
            return Err(Error::Plan("pattern has no edges to join".into()));
        }
        let est = self.db.estimator();
        // One workspace across all plans of this twig: induced sub-twig
        // estimates are shared between plans that join the same prefix
        // sets, and per-step buffers are reused.
        let mut ws = CostWorkspace::new();
        let mut costed: Vec<CostedPlan> = Vec::with_capacity(plans.len());
        for p in &plans {
            let total = cost_plan_with(&est, &flat, p, &mut ws)?;
            costed.push(CostedPlan {
                plan: p.clone(),
                step_outputs: ws.step_outputs.clone(),
                step_algos: ws.step_algos.clone(),
                step_costs: ws.step_costs.clone(),
                total,
            });
        }
        costed.sort_by(|a, b| a.total.total_cmp(&b.total));
        Ok(costed)
    }

    /// Picks the cheapest plan by estimated cost.
    pub fn best_plan(&self, twig: &TwigNode) -> Result<CostedPlan> {
        Ok(self
            .costed_plans(twig)?
            .into_iter()
            .next()
            .expect("costed_plans is non-empty"))
    }

    /// EXPLAIN: cheapest plan, optionally executed for actual numbers.
    pub fn explain(&self, path: &str, analyze: bool) -> Result<ExplainedPlan> {
        let twig = parse_path(path)?;
        let flat = FlatTwig::from_twig(&twig);
        let costed = self.best_plan(&twig)?;
        let execution = if analyze {
            Some(execute_plan_with(
                self.db,
                &flat,
                &costed.plan,
                &costed.step_algos,
            )?)
        } else {
            None
        };
        Ok(ExplainedPlan {
            twig: flat,
            costed,
            execution,
        })
    }

    /// Executes a specific plan with all-structural steps (for
    /// best-vs-worst comparisons independent of algorithm choice).
    pub fn execute(&self, twig: &TwigNode, plan: &Plan) -> Result<Execution> {
        let flat = FlatTwig::from_twig(twig);
        execute_plan(self.db, &flat, plan)
    }

    /// Executes a costed plan honoring its per-step algorithm choices.
    pub fn execute_costed(&self, twig: &TwigNode, costed: &CostedPlan) -> Result<Execution> {
        let flat = FlatTwig::from_twig(twig);
        execute_plan_with(self.db, &flat, &costed.plan, &costed.step_algos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlest_core::SummaryConfig;

    /// A document engineered so join order matters: many faculty//RA
    /// pairs, almost no faculty//TA pairs.
    fn skewed_db() -> Database {
        let mut xml = String::from("<department>");
        for i in 0..60 {
            xml.push_str("<faculty><name/>");
            for _ in 0..8 {
                xml.push_str("<RA/>");
            }
            if i == 0 {
                xml.push_str("<TA/>");
            }
            xml.push_str("</faculty>");
        }
        xml.push_str("</department>");
        Database::load_str(&xml, &SummaryConfig::paper_defaults().with_grid_size(10)).unwrap()
    }

    #[test]
    fn optimizer_prefers_selective_edge_first() {
        let db = skewed_db();
        let opt = Optimizer::new(&db);
        let twig = parse_path("//department//faculty[.//TA][.//RA]").unwrap();
        let best = opt.best_plan(&twig).unwrap();
        // The cheapest plan must start with the highly selective
        // faculty//TA edge (edge index 1 in pre-order flattening).
        assert_eq!(best.plan.steps[0].0, 1, "best plan: {best:?}");
    }

    #[test]
    fn estimated_order_matches_actual_order() {
        // The headline claim: ranking plans by estimated cost should
        // agree with ranking by actual cost, at least at the extremes.
        let db = skewed_db();
        let opt = Optimizer::new(&db);
        let twig = parse_path("//department//faculty[.//TA][.//RA]").unwrap();
        let costed = opt.costed_plans(&twig).unwrap();
        let best = costed.first().unwrap();
        let worst = costed.last().unwrap();
        let actual_best = opt.execute(&twig, &best.plan).unwrap().total_cost;
        let actual_worst = opt.execute(&twig, &worst.plan).unwrap().total_cost;
        assert!(
            actual_best < actual_worst,
            "estimated-best actual {actual_best} vs estimated-worst actual {actual_worst}"
        );
    }

    #[test]
    fn explain_renders_steps() {
        let db = skewed_db();
        let opt = Optimizer::new(&db);
        let explained = opt.explain("//faculty[.//TA][.//RA]", true).unwrap();
        let text = explained.render();
        assert!(text.contains("plan cost"));
        assert!(text.contains("step 0"));
        assert!(text.contains("actual_pairs="));
        // Without analyze, actuals are dashes.
        let explained = opt.explain("//faculty[.//TA][.//RA]", false).unwrap();
        assert!(explained.render().contains("actual_pairs=-"));
    }

    #[test]
    fn single_node_pattern_is_a_plan_error() {
        let db = skewed_db();
        let opt = Optimizer::new(&db);
        let twig = parse_path("//faculty").unwrap();
        assert!(matches!(opt.best_plan(&twig), Err(Error::Plan(_))));
    }
}
