//! The cost model: structural-join steps priced by estimated
//! cardinalities, with a per-step physical-algorithm choice.
//!
//! Two operators compete at every step (Section 1: "if there are
//! multiple join algorithms, the optimizer will require accurate
//! estimates to enable it to choose the more efficient algorithm"):
//!
//! * **structural** merge join over sorted inputs:
//!   `|left| + |right| + |output|`;
//! * **navigational** subtree scan from each ancestor candidate:
//!   `scans × avg_subtree_width(ancestor predicate) + |output|`.
//!
//! The optimizer never sees real cardinalities — every term comes from
//! the estimator (match estimates for partial patterns, predicate counts
//! and mean subtree widths from the summaries).

use crate::error::Result;
use crate::plan::{FlatTwig, JoinAlgorithm, Plan};
use xmlest_core::Estimator;

/// Estimated cost breakdown of one plan.
#[derive(Debug, Clone)]
pub struct CostedPlan {
    pub plan: Plan,
    /// Estimated per-step output cardinalities (pattern matches of the
    /// sub-pattern joined so far).
    pub step_outputs: Vec<f64>,
    /// Cheapest algorithm per step.
    pub step_algos: Vec<JoinAlgorithm>,
    /// Estimated per-step cost under the chosen algorithm.
    pub step_costs: Vec<f64>,
    /// Total estimated cost: Σ step costs.
    pub total: f64,
}

/// Prices a plan with the estimator, choosing the cheaper physical
/// algorithm at each step.
pub fn cost_plan(est: &Estimator<'_>, twig: &FlatTwig, plan: &Plan) -> Result<CostedPlan> {
    let mut joined: Vec<usize> = Vec::new();
    let mut total = 0.0;
    let mut step_outputs = Vec::with_capacity(plan.steps.len());
    let mut step_algos = Vec::with_capacity(plan.steps.len());
    let mut step_costs = Vec::with_capacity(plan.steps.len());

    for (i, step) in plan.steps.iter().enumerate() {
        let (p, c, _) = twig.edges[step.0];
        // Cardinality of the already-joined component (or the ancestor
        // predicate itself on the first step) and of the attached node.
        let (new_node, left_card) = if i == 0 {
            joined.extend([p, c]);
            let left = est.node_stats(&twig.preds[p])?.hist.total();
            (None, left)
        } else if joined.contains(&p) {
            let partial = twig.induced_twig(&joined);
            let left = est.twig_stats(&partial)?.match_total();
            joined.push(c);
            (Some(c), left)
        } else {
            let partial = twig.induced_twig(&joined);
            let left = est.twig_stats(&partial)?.match_total();
            joined.push(p);
            (Some(p), left)
        };
        let right_node = new_node.unwrap_or(c);
        let right_card = est.node_stats(&twig.preds[right_node])?.hist.total();

        let combined = twig.induced_twig(&joined);
        let out_card = est.twig_stats(&combined)?.match_total();

        // The scanning side of a navigational join is the edge's parent
        // endpoint; estimate scans as its participation so far.
        let anc_scans = if right_node == p {
            right_card
        } else {
            left_card
        };
        let structural = left_card + right_card + out_card;
        let navigational = match est.avg_width(&twig.preds[p]) {
            Some(w) if w > 0.0 => anc_scans * (w - 1.0).max(0.0) + out_card,
            _ => f64::INFINITY,
        };

        let (algo, cost) = if navigational < structural {
            (JoinAlgorithm::Navigational, navigational)
        } else {
            (JoinAlgorithm::Structural, structural)
        };
        total += cost;
        step_outputs.push(out_card);
        step_algos.push(algo);
        step_costs.push(cost);
    }

    Ok(CostedPlan {
        plan: plan.clone(),
        step_outputs,
        step_algos,
        step_costs,
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{enumerate_plans, FlatTwig};
    use xmlest_core::{Summaries, SummaryConfig};
    use xmlest_predicate::Catalog;
    use xmlest_query::parse_path;
    use xmlest_xml::parser::parse_str;

    fn setup() -> Summaries {
        // Document where joining b//c first is far cheaper than a//b:
        // many b's, few c's.
        let mut xml = String::from("<root>");
        for i in 0..50 {
            xml.push_str("<a>");
            for _ in 0..5 {
                xml.push_str(if i == 0 { "<b><c/></b>" } else { "<b/>" });
            }
            xml.push_str("</a>");
        }
        xml.push_str("</root>");
        let tree = parse_str(&xml).unwrap();
        let mut catalog = Catalog::new();
        catalog.define_all_tags(&tree);
        Summaries::build(
            &tree,
            &catalog,
            &SummaryConfig::paper_defaults().with_grid_size(8),
        )
        .unwrap()
    }

    #[test]
    fn costs_differ_across_orders_and_selective_first_wins() {
        let s = setup();
        let est = s.estimator();
        let twig = FlatTwig::from_twig(&parse_path("//a//b//c").unwrap());
        let plans = enumerate_plans(&twig, 100);
        assert_eq!(plans.len(), 2);
        let costed: Vec<CostedPlan> = plans
            .iter()
            .map(|p| cost_plan(&est, &twig, p).unwrap())
            .collect();
        // The plan starting with the selective b//c edge (edge index 1)
        // must be cheaper than starting with a//b.
        let bc_first = costed.iter().find(|c| c.plan.steps[0].0 == 1).unwrap();
        let ab_first = costed.iter().find(|c| c.plan.steps[0].0 == 0).unwrap();
        assert!(
            bc_first.total < ab_first.total,
            "bc-first {} vs ab-first {}",
            bc_first.total,
            ab_first.total
        );
        // Step metadata is recorded per step.
        assert_eq!(bc_first.step_outputs.len(), 2);
        assert_eq!(bc_first.step_algos.len(), 2);
        assert_eq!(bc_first.step_costs.len(), 2);
        assert!((bc_first.step_costs.iter().sum::<f64>() - bc_first.total).abs() < 1e-9);
    }

    #[test]
    fn final_step_output_is_full_pattern_estimate() {
        let s = setup();
        let est = s.estimator();
        let parsed = parse_path("//a//b//c").unwrap();
        let twig = FlatTwig::from_twig(&parsed);
        let full = est.estimate_twig(&parsed).unwrap().value;
        for p in enumerate_plans(&twig, 100) {
            let c = cost_plan(&est, &twig, &p).unwrap();
            let last = *c.step_outputs.last().unwrap();
            assert!((last - full).abs() < 1e-9, "{last} vs {full}");
        }
    }

    #[test]
    fn navigational_chosen_for_narrow_ancestors_wide_lists() {
        // Few tiny ancestors (b: 5 nodes, width 2) against a huge
        // descendant list (c: 250): scanning b subtrees costs ~5,
        // merging costs ~255.
        let mut xml = String::from("<root>");
        for i in 0..50 {
            if i < 5 {
                xml.push_str("<b><c/></b>");
            }
            for _ in 0..5 {
                xml.push_str("<c/>");
            }
        }
        xml.push_str("</root>");
        let tree = parse_str(&xml).unwrap();
        let mut catalog = Catalog::new();
        catalog.define_all_tags(&tree);
        let s = Summaries::build(&tree, &catalog, &SummaryConfig::paper_defaults()).unwrap();
        let est = s.estimator();
        let twig = FlatTwig::from_twig(&parse_path("//b//c").unwrap());
        let plan = &enumerate_plans(&twig, 10)[0];
        let costed = cost_plan(&est, &twig, plan).unwrap();
        assert_eq!(costed.step_algos, vec![JoinAlgorithm::Navigational]);
    }

    #[test]
    fn structural_chosen_for_wide_ancestors() {
        let s = setup();
        let est = s.estimator();
        // a spans ~5 children each: nav scan = 50 a's x ~10 positions,
        // structural = 50 + 250 + out. Both plausible; root//a is the
        // clear case: one root spanning everything.
        let twig = FlatTwig::from_twig(&parse_path("//root//b").unwrap());
        let plan = &enumerate_plans(&twig, 10)[0];
        let costed = cost_plan(&est, &twig, plan).unwrap();
        assert_eq!(costed.step_algos, vec![JoinAlgorithm::Structural]);
    }
}
