//! The cost model: structural-join steps priced by estimated
//! cardinalities, with a per-step physical-algorithm choice.
//!
//! Two operators compete at every step (Section 1: "if there are
//! multiple join algorithms, the optimizer will require accurate
//! estimates to enable it to choose the more efficient algorithm"):
//!
//! * **structural** merge join over sorted inputs:
//!   `|left| + |right| + |output|`;
//! * **navigational** subtree scan from each ancestor candidate:
//!   `scans × avg_subtree_width(ancestor predicate) + |output|`.
//!
//! The optimizer never sees real cardinalities — every term comes from
//! the estimator (match estimates for partial patterns, predicate counts
//! and mean subtree widths from the summaries).

use crate::error::Result;
use crate::plan::{FlatTwig, JoinAlgorithm, Plan};
use std::collections::HashMap;
use xmlest_core::{Estimator, TwigNode};

/// Estimated cost breakdown of one plan.
#[derive(Debug, Clone)]
pub struct CostedPlan {
    pub plan: Plan,
    /// Estimated per-step output cardinalities (pattern matches of the
    /// sub-pattern joined so far).
    pub step_outputs: Vec<f64>,
    /// Cheapest algorithm per step.
    pub step_algos: Vec<JoinAlgorithm>,
    /// Estimated per-step cost under the chosen algorithm.
    pub step_costs: Vec<f64>,
    /// Total estimated cost: Σ step costs.
    pub total: f64,
}

/// Reusable scratch for plan costing over **one** twig: the induced
/// sub-twigs a plan prefix generates are memoized by joined-node
/// bitmask, and the per-step result buffers are reused across plans.
/// After every induced sub-twig of a twig's plans has been seen once,
/// re-costing allocates nothing (cardinalities come from the estimator's
/// view-based totals, which run on the thread-local arena) — enforced by
/// `tests/alloc_discipline.rs`.
///
/// A workspace is bound to the twig of its first use; using it with a
/// different twig would serve wrong sub-patterns, so don't share one
/// across queries (the optimizer creates one per enumeration).
#[derive(Debug, Default)]
pub struct CostWorkspace {
    /// Induced sub-twigs keyed by the joined-node set's bitmask.
    induced: HashMap<u64, TwigNode>,
    joined: Vec<usize>,
    /// Per-step outputs of the most recent [`cost_plan_with`] call.
    pub step_outputs: Vec<f64>,
    /// Per-step algorithm choices of the most recent call.
    pub step_algos: Vec<JoinAlgorithm>,
    /// Per-step costs of the most recent call.
    pub step_costs: Vec<f64>,
}

/// Key for the induced-twig memo: node sets with every index < 64 get
/// an exact bitmask; larger twigs (beyond any plan the optimizer
/// enumerates, but reachable through the public costing API) bypass the
/// memo rather than risk colliding masks.
const UNMEMOIZABLE: u64 = u64::MAX;

impl CostWorkspace {
    /// A fresh workspace; the induced-twig memo fills on first use.
    pub fn new() -> Self {
        CostWorkspace::default()
    }

    /// Clears the twig binding (the induced sub-twig memo) so the
    /// workspace can serve a different query, keeping every buffer's
    /// capacity. The planner calls this between queries; sharing a
    /// workspace across twigs *without* resetting would serve wrong
    /// sub-patterns.
    pub fn reset(&mut self) {
        self.induced.clear();
        self.joined.clear();
        self.step_outputs.clear();
        self.step_algos.clear();
        self.step_costs.clear();
    }

    fn mask_of(joined: &[usize]) -> u64 {
        if joined.iter().any(|&n| n >= 64) {
            return UNMEMOIZABLE;
        }
        joined.iter().fold(0, |m, &n| m | (1u64 << n))
    }

    /// The memoized induced twig for the current `joined` set; sets too
    /// large to key exactly are rebuilt each time instead.
    fn induced<'s>(
        induced: &'s mut HashMap<u64, TwigNode>,
        twig: &FlatTwig,
        joined: &[usize],
    ) -> &'s TwigNode {
        let mask = Self::mask_of(joined);
        let entry = induced.entry(mask);
        if mask == UNMEMOIZABLE {
            // Not memoizable: always rebuild (the slot just holds the
            // latest, so the returned borrow stays valid).
            return &*entry
                .and_modify(|t| *t = twig.induced_twig(joined))
                .or_insert_with(|| twig.induced_twig(joined));
        }
        entry.or_insert_with(|| twig.induced_twig(joined))
    }
}

/// Prices a plan with the estimator, choosing the cheaper physical
/// algorithm at each step. Convenience wrapper over [`cost_plan_with`]
/// that materializes an owned [`CostedPlan`].
pub fn cost_plan(est: &Estimator<'_>, twig: &FlatTwig, plan: &Plan) -> Result<CostedPlan> {
    let mut ws = CostWorkspace::new();
    let total = cost_plan_with(est, twig, plan, &mut ws)?;
    Ok(CostedPlan {
        plan: plan.clone(),
        step_outputs: ws.step_outputs.clone(),
        step_algos: ws.step_algos.clone(),
        step_costs: ws.step_costs.clone(),
        total,
    })
}

/// [`cost_plan`] on a reused workspace, returning the total and leaving
/// per-step data in the workspace buffers. Every cardinality comes from
/// the estimator's view-based totals ([`Estimator::node_total`],
/// [`Estimator::twig_match_total`]) — no owned `NodeStats` (histogram +
/// coverage clones) are materialized anywhere on this path.
pub fn cost_plan_with(
    est: &Estimator<'_>,
    twig: &FlatTwig,
    plan: &Plan,
    ws: &mut CostWorkspace,
) -> Result<f64> {
    ws.joined.clear();
    ws.step_outputs.clear();
    ws.step_algos.clear();
    ws.step_costs.clear();
    let mut total = 0.0;

    for (i, step) in plan.steps.iter().enumerate() {
        let (p, c, _) = twig.edges[step.0];
        // Cardinality of the already-joined component (or the ancestor
        // predicate itself on the first step) and of the attached node.
        let (new_node, left_card) = if i == 0 {
            ws.joined.extend([p, c]);
            let left = est.node_total(&twig.preds[p])?;
            (None, left)
        } else if ws.joined.contains(&p) {
            let partial = CostWorkspace::induced(&mut ws.induced, twig, &ws.joined);
            let left = est.twig_match_total(partial)?;
            ws.joined.push(c);
            (Some(c), left)
        } else {
            let partial = CostWorkspace::induced(&mut ws.induced, twig, &ws.joined);
            let left = est.twig_match_total(partial)?;
            ws.joined.push(p);
            (Some(p), left)
        };
        let right_node = new_node.unwrap_or(c);
        let right_card = est.node_total(&twig.preds[right_node])?;

        let combined = CostWorkspace::induced(&mut ws.induced, twig, &ws.joined);
        let out_card = est.twig_match_total(combined)?;

        // The scanning side of a navigational join is the edge's parent
        // endpoint; estimate scans as its participation so far.
        let anc_scans = if right_node == p {
            right_card
        } else {
            left_card
        };
        let structural = left_card + right_card + out_card;
        let navigational = match est.avg_width(&twig.preds[p]) {
            Some(w) if w > 0.0 => anc_scans * (w - 1.0).max(0.0) + out_card,
            _ => f64::INFINITY,
        };

        let (algo, cost) = if navigational < structural {
            (JoinAlgorithm::Navigational, navigational)
        } else {
            (JoinAlgorithm::Structural, structural)
        };
        total += cost;
        ws.step_outputs.push(out_card);
        ws.step_algos.push(algo);
        ws.step_costs.push(cost);
    }

    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{enumerate_plans, FlatTwig};
    use xmlest_core::{Summaries, SummaryConfig};
    use xmlest_predicate::Catalog;
    use xmlest_query::parse_path;
    use xmlest_xml::parser::parse_str;

    fn setup() -> Summaries {
        // Document where joining b//c first is far cheaper than a//b:
        // many b's, few c's.
        let mut xml = String::from("<root>");
        for i in 0..50 {
            xml.push_str("<a>");
            for _ in 0..5 {
                xml.push_str(if i == 0 { "<b><c/></b>" } else { "<b/>" });
            }
            xml.push_str("</a>");
        }
        xml.push_str("</root>");
        let tree = parse_str(&xml).unwrap();
        let mut catalog = Catalog::new();
        catalog.define_all_tags(&tree);
        Summaries::build(
            &tree,
            &catalog,
            &SummaryConfig::paper_defaults().with_grid_size(8),
        )
        .unwrap()
    }

    #[test]
    fn costs_differ_across_orders_and_selective_first_wins() {
        let s = setup();
        let est = s.estimator();
        let twig = FlatTwig::from_twig(&parse_path("//a//b//c").unwrap());
        let plans = enumerate_plans(&twig, 100);
        assert_eq!(plans.len(), 2);
        let costed: Vec<CostedPlan> = plans
            .iter()
            .map(|p| cost_plan(&est, &twig, p).unwrap())
            .collect();
        // The plan starting with the selective b//c edge (edge index 1)
        // must be cheaper than starting with a//b.
        let bc_first = costed.iter().find(|c| c.plan.steps[0].0 == 1).unwrap();
        let ab_first = costed.iter().find(|c| c.plan.steps[0].0 == 0).unwrap();
        assert!(
            bc_first.total < ab_first.total,
            "bc-first {} vs ab-first {}",
            bc_first.total,
            ab_first.total
        );
        // Step metadata is recorded per step.
        assert_eq!(bc_first.step_outputs.len(), 2);
        assert_eq!(bc_first.step_algos.len(), 2);
        assert_eq!(bc_first.step_costs.len(), 2);
        assert!((bc_first.step_costs.iter().sum::<f64>() - bc_first.total).abs() < 1e-9);
    }

    #[test]
    fn final_step_output_is_full_pattern_estimate() {
        let s = setup();
        let est = s.estimator();
        let parsed = parse_path("//a//b//c").unwrap();
        let twig = FlatTwig::from_twig(&parsed);
        let full = est.estimate_twig(&parsed).unwrap().value;
        for p in enumerate_plans(&twig, 100) {
            let c = cost_plan(&est, &twig, &p).unwrap();
            let last = *c.step_outputs.last().unwrap();
            assert!((last - full).abs() < 1e-9, "{last} vs {full}");
        }
    }

    #[test]
    fn navigational_chosen_for_narrow_ancestors_wide_lists() {
        // Few tiny ancestors (b: 5 nodes, width 2) against a huge
        // descendant list (c: 250): scanning b subtrees costs ~5,
        // merging costs ~255.
        let mut xml = String::from("<root>");
        for i in 0..50 {
            if i < 5 {
                xml.push_str("<b><c/></b>");
            }
            for _ in 0..5 {
                xml.push_str("<c/>");
            }
        }
        xml.push_str("</root>");
        let tree = parse_str(&xml).unwrap();
        let mut catalog = Catalog::new();
        catalog.define_all_tags(&tree);
        let s = Summaries::build(&tree, &catalog, &SummaryConfig::paper_defaults()).unwrap();
        let est = s.estimator();
        let twig = FlatTwig::from_twig(&parse_path("//b//c").unwrap());
        let plan = &enumerate_plans(&twig, 10)[0];
        let costed = cost_plan(&est, &twig, plan).unwrap();
        assert_eq!(costed.step_algos, vec![JoinAlgorithm::Navigational]);
    }

    #[test]
    fn structural_chosen_for_wide_ancestors() {
        let s = setup();
        let est = s.estimator();
        // a spans ~5 children each: nav scan = 50 a's x ~10 positions,
        // structural = 50 + 250 + out. Both plausible; root//a is the
        // clear case: one root spanning everything.
        let twig = FlatTwig::from_twig(&parse_path("//root//b").unwrap());
        let plan = &enumerate_plans(&twig, 10)[0];
        let costed = cost_plan(&est, &twig, plan).unwrap();
        assert_eq!(costed.step_algos, vec![JoinAlgorithm::Structural]);
    }
}
