//! The unified planner: one front door from query to costed plan.
//!
//! Historically every consumer stitched the front half of the pipeline
//! together by hand — parse, flatten, enumerate, cost — and paid the
//! full enumeration on every call ([`crate::Optimizer::best_plan`]
//! re-enumerated per query). The [`Planner`] owns that pipeline:
//!
//! * it resolves queries through the database's prepared-query cache
//!   (canonical twig interning, epoch validation — see
//!   [`crate::prepared`]);
//! * it owns the [`CostWorkspace`] and reuses it across queries
//!   ([`CostWorkspace::reset`] keeps buffer capacity), so warm costing
//!   stays allocation-free;
//! * it memoizes the cheapest [`CostedPlan`] **by [`TwigId`]** on the
//!   prepared entry itself: every spelling of a query shares one plan,
//!   computed once per database epoch. A collection mutation bumps the
//!   epoch, the entry re-prepares, and its plan slot comes back empty —
//!   a stale plan is unreachable by construction.
//!
//! Plans are computed on the **canonical** twig, so plan step indices
//! refer to the canonical pre-order flattening (sibling branches sorted
//! by `(axis, rendering)`), whatever the query's original spelling.

use crate::cost::{cost_plan_with, CostWorkspace, CostedPlan};
use crate::db::Database;
use crate::error::{Error, Result};
use crate::plan::{enumerate_plans, FlatTwig};
use crate::prepared::PreparedQuery;
use std::sync::{Arc, Mutex};
use xmlest_core::TwigNode;
use xmlest_xobs::Stage;

/// Upper bound on enumerated plans (twigs in the paper's experiments
/// have at most a handful of edges; 5040 covers 7 freely-ordered edges).
pub(crate) const PLAN_CAP: usize = 5040;

/// The planning facade over one database. Cheap to construct (the plan
/// memo lives on the database's prepared entries and persists across
/// planners); hold one wherever plans are needed repeatedly so the cost
/// workspace stays warm.
pub struct Planner<'db> {
    db: &'db Database,
    /// Reused costing scratch; locked only while actually costing (the
    /// memoized path never touches it).
    ws: Mutex<CostWorkspace>,
}

impl<'db> Planner<'db> {
    pub(crate) fn new(db: &'db Database) -> Self {
        Planner {
            db,
            ws: Mutex::new(CostWorkspace::new()),
        }
    }

    /// The database this planner plans over.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// Prepares a query string through the shared cache (parse →
    /// canonicalize → intern → resolve leaves).
    pub fn prepare(&self, path: &str) -> Result<Arc<PreparedQuery>> {
        self.db.prepare(path)
    }

    /// Prepares a pre-built pattern (canonicalize → intern → resolve).
    pub fn prepare_twig(&self, twig: &TwigNode) -> Result<Arc<PreparedQuery>> {
        self.db.prepare_twig(twig)
    }

    /// The cheapest plan for a prepared query, memoized on the entry.
    /// First call per (canonical twig, epoch) enumerates and costs every
    /// connected order; later calls — from any spelling, any planner —
    /// return the shared `Arc`. A stale entry (prepared under an older
    /// epoch) is transparently refreshed first, so the returned plan is
    /// always costed under the database's current summaries.
    pub fn best_plan(&self, prepared: &Arc<PreparedQuery>) -> Result<Arc<CostedPlan>> {
        let entry = self.db.refresh_prepared(prepared)?;
        if let Some(slot) = entry.plan_slot().get() {
            return slot.clone().ok_or_else(Self::no_edges);
        }
        let span = self.db.recorder().span(Stage::Plan);
        let computed = self.compute_best(entry.twig())?;
        drop(span);
        // First write wins on a race; both sides computed the identical
        // deterministic plan.
        let slot = entry.plan_slot().get_or_init(|| computed);
        slot.clone().ok_or_else(Self::no_edges)
    }

    /// Prepares a query string and returns its memoized cheapest plan.
    pub fn plan(&self, path: &str) -> Result<(Arc<PreparedQuery>, Arc<CostedPlan>)> {
        let prepared = self.prepare(path)?;
        let costed = self.best_plan(&prepared)?;
        Ok((prepared, costed))
    }

    /// All plans of a pattern, each priced by the estimator, cheapest
    /// first — the diagnostic/EXPLAIN surface, **always recomputed**
    /// (the uncached baseline benches compare against; EXPLAIN
    /// workloads should prefer [`Planner::ranked_plans`]). Runs on the
    /// shared workspace, canonical flattening.
    pub fn costed_plans(&self, twig: &TwigNode) -> Result<Vec<CostedPlan>> {
        let mut costed: Vec<CostedPlan> = Vec::new();
        if !self.cost_each_plan(twig, |c| costed.push(c))? {
            return Err(Self::no_edges());
        }
        costed.sort_by(|a, b| a.total.total_cmp(&b.total));
        Ok(costed)
    }

    /// The full ranked plan list of a prepared query, cheapest first,
    /// memoized on the entry per (canonical twig, epoch) — repeated
    /// EXPLAIN calls skip re-enumeration and re-costing entirely and
    /// share one `Arc`. A stale entry refreshes first (fresh entries
    /// carry an empty ranked slot), so a ranking costed under old
    /// summaries is never served; edgeless patterns memoize an empty
    /// list and keep returning the plan error.
    pub fn ranked_plans(&self, prepared: &Arc<PreparedQuery>) -> Result<Arc<Vec<CostedPlan>>> {
        let entry = self.db.refresh_prepared(prepared)?;
        let ranked = match entry.ranked_slot().get() {
            Some(r) => r.clone(),
            None => {
                let span = self.db.recorder().span(Stage::Plan);
                let mut costed: Vec<CostedPlan> = Vec::new();
                self.cost_each_plan(entry.twig(), |c| costed.push(c))?;
                costed.sort_by(|a, b| a.total.total_cmp(&b.total));
                drop(span);
                // First write wins on a race; both sides computed the
                // identical deterministic ranking.
                entry.ranked_slot().get_or_init(|| Arc::new(costed)).clone()
            }
        };
        if ranked.is_empty() {
            return Err(Self::no_edges());
        }
        Ok(ranked)
    }

    /// Enumerates and costs every connected order of the (canonical)
    /// twig, keeping only the cheapest; `None` for edgeless patterns.
    /// The strict `<` fold keeps the first-enumerated plan on ties —
    /// matching the stable sort the ranked API uses.
    fn compute_best(&self, twig: &TwigNode) -> Result<Option<Arc<CostedPlan>>> {
        let mut best: Option<CostedPlan> = None;
        if !self.cost_each_plan(twig, |c| {
            if best.as_ref().is_none_or(|b| c.total < b.total) {
                best = Some(c);
            }
        })? {
            return Ok(None);
        }
        Ok(best.map(Arc::new))
    }

    /// The one costing loop both ranked and memoized planning share:
    /// canonical flatten, connected-order enumeration (capped at
    /// [`PLAN_CAP`]), shared-workspace costing, one [`CostedPlan`] per
    /// order handed to `visit`. Returns `Ok(false)` — without invoking
    /// `visit` — for edgeless patterns.
    fn cost_each_plan(&self, twig: &TwigNode, mut visit: impl FnMut(CostedPlan)) -> Result<bool> {
        let canonical = twig.canonicalize();
        let flat = FlatTwig::from_twig(&canonical);
        let plans = enumerate_plans(&flat, PLAN_CAP);
        if plans.is_empty() {
            return Ok(false);
        }
        let est = self.db.estimator();
        let mut ws = self.ws.lock().expect("planner workspace lock"); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
        ws.reset();
        for p in &plans {
            let total = cost_plan_with(&est, &flat, p, &mut ws)?;
            visit(CostedPlan {
                plan: p.clone(),
                step_outputs: ws.step_outputs.clone(),
                step_algos: ws.step_algos.clone(),
                step_costs: ws.step_costs.clone(),
                total,
            });
        }
        Ok(true)
    }

    fn no_edges() -> Error {
        Error::Plan("pattern has no edges to join".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlest_core::SummaryConfig;
    use xmlest_query::parse_path;

    fn skewed_db() -> Database {
        let mut xml = String::from("<department>");
        for i in 0..60 {
            xml.push_str("<faculty><name/>");
            for _ in 0..8 {
                xml.push_str("<RA/>");
            }
            if i == 0 {
                xml.push_str("<TA/>");
            }
            xml.push_str("</faculty>");
        }
        xml.push_str("</department>");
        Database::load_str(&xml, &SummaryConfig::paper_defaults().with_grid_size(10)).unwrap()
    }

    #[test]
    fn best_plan_is_memoized_per_identity() {
        let db = skewed_db();
        let planner = db.planner();
        let a = planner
            .prepare("//department//faculty[.//TA][.//RA]")
            .unwrap();
        let b = planner
            .prepare("//department//faculty[.//RA][.//TA]")
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "spellings share one prepared entry");
        assert!(!a.is_planned());
        let plan_a = planner.best_plan(&a).unwrap();
        assert!(a.is_planned());
        let plan_b = planner.best_plan(&b).unwrap();
        assert!(Arc::ptr_eq(&plan_a, &plan_b), "one plan for both spellings");
        // A second planner over the same database shares the memo.
        let other = db.planner();
        let plan_c = other.best_plan(&a).unwrap();
        assert!(Arc::ptr_eq(&plan_a, &plan_c));
    }

    #[test]
    fn best_plan_matches_ranked_enumeration() {
        let db = skewed_db();
        let planner = db.planner();
        let twig = parse_path("//department//faculty[.//TA][.//RA]").unwrap();
        let ranked = planner.costed_plans(&twig).unwrap();
        let prepared = planner.prepare_twig(&twig).unwrap();
        let best = planner.best_plan(&prepared).unwrap();
        assert_eq!(best.plan, ranked[0].plan);
        assert_eq!(best.total.to_bits(), ranked[0].total.to_bits());
    }

    #[test]
    fn canonical_flattening_orders_selective_edge() {
        // Canonical sibling order under faculty is [RA, TA] (sorted by
        // rendering), so the selective faculty//TA edge is index 2.
        let db = skewed_db();
        let planner = db.planner();
        let (_, best) = planner.plan("//department//faculty[.//TA][.//RA]").unwrap();
        let (_, best_swapped) = planner.plan("//department//faculty[.//RA][.//TA]").unwrap();
        assert_eq!(best.plan, best_swapped.plan);
        assert_eq!(best.plan.steps[0].0, 2, "TA edge first: {best:?}");
    }

    #[test]
    fn ranked_plans_memoize_per_identity_and_epoch() {
        let db = skewed_db();
        let planner = db.planner();
        let a = planner
            .prepare("//department//faculty[.//TA][.//RA]")
            .unwrap();
        let ranked = planner.ranked_plans(&a).unwrap();
        // Matches the uncached enumeration exactly.
        let twig = parse_path("//department//faculty[.//TA][.//RA]").unwrap();
        let uncached = planner.costed_plans(&twig).unwrap();
        assert_eq!(ranked.len(), uncached.len());
        for (r, u) in ranked.iter().zip(&uncached) {
            assert_eq!(r.plan, u.plan);
            assert_eq!(r.total.to_bits(), u.total.to_bits());
        }
        // Repeated calls — and equivalent spellings — share one Arc.
        let b = planner
            .prepare("//department//faculty[.//RA][.//TA]")
            .unwrap();
        let again = planner.ranked_plans(&b).unwrap();
        assert!(Arc::ptr_eq(&ranked, &again), "ranking recomputed");
        assert_eq!(db.prepared_stats().ranked, 1);
        // Edgeless patterns memoize the empty ranking and keep erroring.
        let single = planner.prepare("//faculty").unwrap();
        assert!(planner.ranked_plans(&single).is_err());
        assert!(planner.ranked_plans(&single).is_err());
        assert_eq!(single.cached_ranked_plans().map(|r| r.len()), Some(0));
    }

    #[test]
    fn edgeless_pattern_is_a_plan_error() {
        let db = skewed_db();
        let planner = db.planner();
        let prepared = planner.prepare("//faculty").unwrap();
        assert!(matches!(planner.best_plan(&prepared), Err(Error::Plan(_))));
        // The "planned" state is still memoized (slot holds None).
        assert!(prepared.is_planned());
        assert!(prepared.cached_plan().is_none());
        assert!(matches!(planner.best_plan(&prepared), Err(Error::Plan(_))));
    }
}
