//! Plan execution with actual-cardinality and actual-cost tracking.
//!
//! Each step joins the candidate lists of its edge's endpoints with the
//! chosen physical algorithm, then semi-join-filters both lists to the
//! participating nodes (the classic structural-join pipeline). The
//! per-step *actual* pair counts and work recorded here are what the
//! optimizer's estimates are judged against in the EXPLAIN output.
//!
//! Two physical operators:
//! * **structural** — stack-based merge of the two sorted lists
//!   (`xmlest-query::structural`), work `|A| + |D| + |pairs|`;
//! * **navigational** — for every ancestor candidate, walk its subtree
//!   (a contiguous id range in our document-order arena) testing a
//!   candidate bitmap, work `Σ subtree sizes + |pairs|`. This is the
//!   node-at-a-time strategy of early navigational engines; it beats the
//!   merge when ancestors are few and small but the descendant list is
//!   enormous.

use crate::db::Database;
use crate::error::Result;
use crate::plan::{FlatTwig, JoinAlgorithm, Plan};
use std::collections::BTreeSet;
use xmlest_core::Axis;
use xmlest_query::structural::{join_ad_pairs, Item};
use xmlest_xml::NodeId;

/// Execution trace of one plan.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Actual pairs produced by each step's join.
    pub step_pairs: Vec<u64>,
    /// Actual work per step (inputs touched + pairs emitted).
    pub step_work: Vec<u64>,
    /// Total actual cost: Σ step work.
    pub total_cost: u64,
    /// Candidate list sizes per pattern node after all semi-joins.
    pub final_candidates: Vec<usize>,
}

/// Executes `plan` with every step using the structural algorithm.
pub fn execute_plan(db: &Database, twig: &FlatTwig, plan: &Plan) -> Result<Execution> {
    let algos = vec![JoinAlgorithm::Structural; plan.steps.len()];
    execute_plan_with(db, twig, plan, &algos)
}

/// Executes `plan` with a per-step algorithm choice (as produced by the
/// cost model).
pub fn execute_plan_with(
    db: &Database,
    twig: &FlatTwig,
    plan: &Plan,
    algos: &[JoinAlgorithm],
) -> Result<Execution> {
    // Materialize candidate lists per pattern node. Execution mutates
    // the lists (semi-join filtering), so borrowed index lists from
    // `candidates` are cloned into owned form here — exactly once.
    let mut cands: Vec<Vec<Item<NodeId>>> = twig
        .preds
        .iter()
        .map(|p| db.candidates(p).map(std::borrow::Cow::into_owned))
        .collect::<Result<_>>()?;

    let mut step_pairs = Vec::with_capacity(plan.steps.len());
    let mut step_work = Vec::with_capacity(plan.steps.len());
    let mut total_cost = 0u64;

    for (i, step) in plan.steps.iter().enumerate() {
        let algo = algos.get(i).copied().unwrap_or(JoinAlgorithm::Structural);
        let (p, c, axis) = twig.edges[step.0];
        let (pairs, work) = match algo {
            JoinAlgorithm::Structural => {
                let pairs = join_ad_pairs(&cands[p], &cands[c]);
                let work = (cands[p].len() + cands[c].len()) as u64 + pairs.len() as u64;
                (pairs, work)
            }
            JoinAlgorithm::Navigational => nav_join(db, &cands[p], &cands[c]),
        };
        let pairs: Vec<(NodeId, NodeId)> = match axis {
            Axis::Descendant => pairs,
            Axis::Child => pairs
                .into_iter()
                .filter(|&(a, d)| db.tree().parent(d) == Some(a))
                .collect(),
        };
        total_cost += work;
        step_pairs.push(pairs.len() as u64);
        step_work.push(work);

        // Semi-join: keep only participating nodes on both sides.
        let keep_a: BTreeSet<NodeId> = pairs.iter().map(|&(a, _)| a).collect();
        let keep_d: BTreeSet<NodeId> = pairs.iter().map(|&(_, d)| d).collect();
        cands[p].retain(|item| keep_a.contains(&item.payload));
        cands[c].retain(|item| keep_d.contains(&item.payload));
    }

    Ok(Execution {
        step_pairs,
        step_work,
        total_cost,
        final_candidates: cands.iter().map(Vec::len).collect(),
    })
}

/// Navigational ancestor–descendant join: walk each ancestor's subtree
/// (a contiguous position range) and test nodes against a descendant
/// bitmap. Returns the pairs plus the actual work performed.
fn nav_join(
    db: &Database,
    ancestors: &[Item<NodeId>],
    descendants: &[Item<NodeId>],
) -> (Vec<(NodeId, NodeId)>, u64) {
    let n = db.tree().len();
    let mut is_candidate = vec![false; n];
    for d in descendants {
        is_candidate[d.payload.index()] = true;
    }
    let mut pairs = Vec::new();
    let mut work = 0u64;
    for a in ancestors {
        let iv = a.interval;
        work += u64::from(iv.end - iv.start);
        for pos in iv.start + 1..=iv.end {
            if is_candidate[pos as usize] {
                pairs.push((a.payload, NodeId(pos)));
            }
        }
    }
    work += pairs.len() as u64;
    // The pairs come out ancestor-major; the semi-join sets downstream
    // don't care about order, but keep the structural operator's
    // descendant-major order for reproducibility of traces.
    pairs.sort_by_key(|&(a, d)| (d, a));
    (pairs, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{enumerate_plans, FlatTwig};
    use xmlest_core::SummaryConfig;
    use xmlest_query::parse_path;

    const FIG1: &str = "<department>\
        <faculty><name/><RA/></faculty>\
        <staff><name/></staff>\
        <faculty><name/><secretary/><RA/><RA/><RA/></faculty>\
        <lecturer><name/><TA/><TA/><TA/></lecturer>\
        <faculty><name/><secretary/><TA/><RA/><RA/><TA/></faculty>\
        <research_scientist><name/><secretary/><RA/><RA/><RA/><RA/></research_scientist>\
        </department>";

    fn db() -> Database {
        Database::load_str(FIG1, &SummaryConfig::paper_defaults().with_grid_size(4)).unwrap()
    }

    #[test]
    fn two_node_query_pairs_match_exact_count() {
        let d = db();
        let twig = FlatTwig::from_twig(&parse_path("//faculty//TA").unwrap());
        let plans = enumerate_plans(&twig, 10);
        assert_eq!(plans.len(), 1);
        let exec = execute_plan(&d, &twig, &plans[0]).unwrap();
        assert_eq!(exec.step_pairs, vec![2]);
        assert_eq!(exec.final_candidates[0], 1, "one faculty participates");
        assert_eq!(exec.final_candidates[1], 2, "two TAs participate");
    }

    #[test]
    fn navigational_join_agrees_with_structural() {
        let d = db();
        for q in [
            "//faculty//TA",
            "//department//RA",
            "//faculty//name",
            "//faculty/name",
        ] {
            let twig = FlatTwig::from_twig(&parse_path(q).unwrap());
            let plan = &enumerate_plans(&twig, 10)[0];
            let s = execute_plan_with(&d, &twig, plan, &[JoinAlgorithm::Structural]).unwrap();
            let n = execute_plan_with(&d, &twig, plan, &[JoinAlgorithm::Navigational]).unwrap();
            assert_eq!(s.step_pairs, n.step_pairs, "{q}");
            assert_eq!(s.final_candidates, n.final_candidates, "{q}");
        }
    }

    #[test]
    fn navigational_work_tracks_subtree_sizes() {
        let d = db();
        let twig = FlatTwig::from_twig(&parse_path("//department//RA").unwrap());
        let plan = &enumerate_plans(&twig, 10)[0];
        let n = execute_plan_with(&d, &twig, plan, &[JoinAlgorithm::Navigational]).unwrap();
        // department spans the whole 31-node document: work = 30 + pairs.
        assert_eq!(n.step_work, vec![30 + 10]);
        let s = execute_plan_with(&d, &twig, plan, &[JoinAlgorithm::Structural]).unwrap();
        // structural: 1 department + 10 RAs + 10 pairs.
        assert_eq!(s.step_work, vec![1 + 10 + 10]);
    }

    #[test]
    fn step_order_changes_intermediate_sizes() {
        let d = db();
        // department//faculty[//TA][//RA]
        let twig = FlatTwig::from_twig(&parse_path("//department//faculty[.//TA][.//RA]").unwrap());
        let plans = enumerate_plans(&twig, 100);
        let mut intermediates = BTreeSet::new();
        for p in &plans {
            let exec = execute_plan(&d, &twig, p).unwrap();
            intermediates.insert(exec.step_pairs[0]);
            // Surviving faculty is always 1 (only faculty3 has TA+RA).
            assert_eq!(exec.final_candidates[1], 1, "plan {p:?}");
        }
        // Different first edges produce different first-step sizes
        // (dept//fac: 3 pairs; fac//TA: 2; fac//RA: 6).
        assert_eq!(intermediates, BTreeSet::from([2u64, 3, 6]));
    }

    #[test]
    fn parent_child_edge_filters_pairs() {
        let d = db();
        let twig = FlatTwig::from_twig(&parse_path("//department/name").unwrap());
        let plans = enumerate_plans(&twig, 10);
        let exec = execute_plan(&d, &twig, &plans[0]).unwrap();
        // department has no direct name child in Fig. 1.
        assert_eq!(exec.step_pairs, vec![0]);
        let twig = FlatTwig::from_twig(&parse_path("//faculty/name").unwrap());
        let plans = enumerate_plans(&twig, 10);
        let exec = execute_plan(&d, &twig, &plans[0]).unwrap();
        assert_eq!(exec.step_pairs, vec![3]);
    }

    #[test]
    fn semi_join_shrinks_candidates_monotonically() {
        let d = db();
        let twig = FlatTwig::from_twig(&parse_path("//department//faculty[.//TA][.//RA]").unwrap());
        let plan = &enumerate_plans(&twig, 1)[0];
        let before: Vec<usize> = twig
            .preds
            .iter()
            .map(|p| d.candidates(p).unwrap().len())
            .collect();
        let exec = execute_plan(&d, &twig, plan).unwrap();
        for (b, a) in before.iter().zip(&exec.final_candidates) {
            assert!(a <= b);
        }
    }

    #[test]
    fn mixed_algorithms_across_steps() {
        let d = db();
        let twig = FlatTwig::from_twig(&parse_path("//department//faculty[.//TA][.//RA]").unwrap());
        let plan = &enumerate_plans(&twig, 1)[0];
        let mixed = execute_plan_with(
            &d,
            &twig,
            plan,
            &[
                JoinAlgorithm::Navigational,
                JoinAlgorithm::Structural,
                JoinAlgorithm::Navigational,
            ],
        )
        .unwrap();
        let pure = execute_plan(&d, &twig, plan).unwrap();
        assert_eq!(mixed.step_pairs, pure.step_pairs);
        assert_eq!(mixed.final_candidates, pure.final_candidates);
    }
}
