//! The batch estimation service — the serving layer over a
//! [`Database`].
//!
//! Serving "millions of users" means the same few thousand path strings
//! arrive over and over, in batches. One estimate through the plain API
//! costs a path parse plus whatever the estimator allocates; this module
//! removes both from the steady state:
//!
//! * the **prepared-query cache** (shared with [`Database::estimate`],
//!   so the two entry points warm each other): repeated — or canonically
//!   equivalent — query strings resolve to one cached
//!   [`PreparedQuery`] behind an [`Arc`]; a hit is a read-locked map
//!   probe, an epoch check and a reference-bit store — no parsing, no
//!   allocation, and provably never a stale entry (the epoch bumps on
//!   every collection mutation);
//! * a **workspace pool**: each worker draining a batch checks one
//!   [`TwigWorkspace`] out of the pool, runs every estimate of its share
//!   on it through the zero-alloc `estimate_twig_with` path, and returns
//!   it. The pool never exceeds the worker count, and a warm pool makes
//!   the per-estimate loop **allocation-free per worker** (enforced by
//!   `tests/alloc_discipline.rs`);
//! * **batched fan-out**: [`EstimationService::estimate_batch`] dedups
//!   identical twigs (serving batches repeat the same few paths), bins
//!   the distinct work across `rayon` workers by estimated cost, and
//!   fans each result back to every slot that asked for it; small
//!   batches — and batches that dedup down to little distinct work —
//!   run inline on the calling thread (thread spin-up would dominate).
//!
//! Path-ref results are exactly the single-shot [`Database::estimate`]
//! values — the service changes scheduling, never math. (Caller-owned
//! [`TwigRef::Twig`] patterns are estimated in the sibling order given,
//! bypassing canonicalization: a non-canonical spelling can differ from
//! its path-string twin in the last float bits. Canonicalize first — or
//! use [`EstimationService::prepare`] — for bit-stable results.)
//! [`EstimationService::stats`]
//! snapshots the cache counters (hits, misses, evictions, epoch
//! invalidations) for observability; the `prepared_pipeline` bench
//! reports them next to its timings.

use crate::db::Database;
use crate::error::{Error, Result};
use crate::prepared::{CacheStats, CacheTier, PreparedQuery, TwigId};
use crate::snapshot::SnapshotCell;
use crate::telemetry::{edge_kernels, Telemetry, TraceReport};
use rayon::prelude::*;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;
use xmlest_core::{Estimate, TwigNode, TwigWorkspace};
use xmlest_xobs::Stage;

/// One query in a batch: a path string (resolved through the service's
/// parsed-twig cache) or an already-parsed twig.
#[derive(Debug, Clone, Copy)]
pub enum TwigRef<'a> {
    /// A path query string, e.g. `"//faculty//TA"`.
    Path(&'a str),
    /// A pre-parsed twig pattern.
    Twig(&'a TwigNode),
}

impl<'a> From<&'a str> for TwigRef<'a> {
    fn from(path: &'a str) -> Self {
        TwigRef::Path(path)
    }
}

impl<'a> From<&'a TwigNode> for TwigRef<'a> {
    fn from(twig: &'a TwigNode) -> Self {
        TwigRef::Twig(twig)
    }
}

/// Batches below this size run inline: spreading across threads costs
/// more than estimating.
const PARALLEL_THRESHOLD: usize = 16;

/// A batch estimation service over one database. Cheap to construct
/// (the twig cache lives on the database and persists across services);
/// hold one for the life of a serving loop so the workspace pool stays
/// warm.
pub struct EstimationService<'db> {
    db: &'db Database,
    /// Warm, reusable estimation arenas — at most one per concurrent
    /// worker ever exists.
    pool: Mutex<Vec<TwigWorkspace>>,
}

impl<'db> EstimationService<'db> {
    pub(crate) fn new(db: &'db Database) -> Self {
        EstimationService {
            db,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The database this service estimates over.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// Resolves a [`TwigRef`] to an estimable twig: path strings go
    /// through the shared prepared-query cache (canonical, epoch-valid);
    /// caller-owned twigs are estimated as given — they bypass the cache
    /// and its canonicalization entirely.
    fn resolve<'q>(&self, q: TwigRef<'q>) -> Result<ResolvedTwig<'q>> {
        match q {
            TwigRef::Path(p) => Ok(ResolvedTwig::Prepared(self.db.prepare(p)?)),
            TwigRef::Twig(t) => Ok(ResolvedTwig::Borrowed(t)),
        }
    }

    /// Resolves a query string to its shared [`PreparedQuery`] — parse,
    /// canonicalize, intern and leaf-resolve once; clients keeping the
    /// returned `Arc` can estimate through
    /// [`EstimationService::estimate_prepared`] without even the cache
    /// probe.
    pub fn prepare(&self, path: &str) -> Result<Arc<PreparedQuery>> {
        self.db.prepare(path)
    }

    /// Estimates a prepared query on a pooled workspace. Entries
    /// prepared under an older epoch are transparently refreshed — a
    /// stale plan or resolution is never consumed.
    pub fn estimate_prepared(&self, prepared: &Arc<PreparedQuery>) -> Result<Estimate> {
        let obs = self.db.recorder();
        let fresh = self.db.refresh_prepared(prepared)?;
        let mut ws = self.take_ws();
        // Sampled cadence — see `estimate_batch_into`.
        let span = obs.span_sampled(Stage::Kernel);
        let out: Result<Estimate> = self
            .db
            .estimator()
            .estimate_twig_with(&mut ws, fresh.twig())
            .map_err(Into::into);
        drop(span);
        self.put_ws(ws);
        self.note_estimates(1, out.is_err() as u64);
        out
    }

    /// Counts served estimates/errors into the database's registry
    /// (gated on the recorder so the overhead bench's off-mode is
    /// increment-free).
    #[inline]
    fn note_estimates(&self, served: u64, errors: u64) {
        if self.db.recorder().enabled() {
            let m = self.db.metrics();
            m.estimates.add(served);
            if errors > 0 {
                m.estimate_errors.add(errors);
            }
        }
    }

    /// Checks a workspace out of the pool (allocating a fresh one only
    /// while the pool is still warming up).
    fn take_ws(&self) -> TwigWorkspace {
        self.pool
            .lock()
            .expect("workspace pool lock") // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
            .pop()
            .unwrap_or_default()
    }

    fn put_ws(&self, ws: TwigWorkspace) {
        self.pool.lock().expect("workspace pool lock").push(ws); // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
    }

    /// Estimates one query on a pooled workspace.
    pub fn estimate<'q>(&self, q: impl Into<TwigRef<'q>>) -> Result<Estimate> {
        self.estimate_one(q.into())
    }

    /// Estimates a batch, deduplicating it before fanning out across
    /// `rayon` workers with **one pooled workspace per worker**.
    ///
    /// Serving batches repeat the same few paths, so the batch first
    /// resolves every slot through the prepared cache and collapses
    /// identical twigs — same [`TwigId`] for paths (canonically
    /// equivalent spellings collapse too), same address for borrowed
    /// twigs. Each distinct twig is estimated exactly once and the
    /// result cloned back to every slot that asked for it; estimation is
    /// deterministic per twig, so deduped results are bit-identical to
    /// per-query calls. The distinct work is then binned across workers
    /// by twig node count (greedy longest-first), so a handful of
    /// expensive patterns can't serialize the whole batch behind one
    /// worker. Small batches — and batches whose *distinct* work is
    /// small after dedup — run inline: thread spin-up would dominate.
    ///
    /// Per-query errors (unknown predicates, parse failures) come back
    /// in the matching slot; result order matches the batch.
    pub fn estimate_batch(&self, batch: &[TwigRef<'_>]) -> Vec<Result<Estimate>> {
        // Dedup pays on a single core too (it removes estimates, not
        // just spreads them), so only genuinely small batches take the
        // plain serial loop; `workers` gates the fan-out alone, below.
        if batch.len() < PARALLEL_THRESHOLD {
            let mut out = Vec::with_capacity(batch.len());
            self.estimate_batch_into(batch, &mut out);
            return out;
        }
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);

        // Two-level dedup. Level one collapses identical *refs* (path
        // string content, borrowed-twig address) before touching the
        // prepared cache: even a cache hit costs a read-locked probe,
        // which at sub-µs-per-estimate dominates a repeated batch —
        // 1024 slots over 6 paths must pay 6 probes, not 1024. Level
        // two collapses the *resolved* twigs by interned [`TwigId`], so
        // canonically equivalent spellings estimate once too.
        let mut classes: Vec<TwigRef<'_>> = Vec::new();
        let mut class_of: HashMap<RefKey<'_>, usize> = HashMap::with_capacity(batch.len());
        let mut slots: Vec<usize> = Vec::with_capacity(batch.len());
        for &q in batch {
            let idx = match class_of.entry(RefKey::of(q)) {
                Entry::Occupied(o) => *o.get(),
                Entry::Vacant(v) => {
                    let idx = classes.len();
                    classes.push(q);
                    v.insert(idx);
                    idx
                }
            };
            slots.push(idx);
        }

        let obs = self.db.recorder();
        let prepare_span = obs.span(Stage::Prepare);
        let mut unique: Vec<ResolvedTwig<'_>> = Vec::new();
        let mut index_of: HashMap<DedupKey, usize> = HashMap::with_capacity(classes.len());
        let resolved: Vec<std::result::Result<usize, crate::error::Error>> = classes
            .iter()
            .map(|&q| {
                let twig = self.resolve(q)?;
                Ok(match index_of.entry(twig.dedup_key()) {
                    Entry::Occupied(o) => *o.get(),
                    Entry::Vacant(v) => {
                        let idx = unique.len();
                        unique.push(twig);
                        v.insert(idx);
                        idx
                    }
                })
            })
            .collect();
        drop(prepare_span);

        let results: Vec<Result<Estimate>> = if unique.len() < PARALLEL_THRESHOLD || workers == 1 {
            // The batch deduped down to little distinct work (the
            // crossover is on *distinct* twigs, not batch length), or
            // there is nothing to fan out to.
            let mut ws = self.take_ws();
            let est = self.db.estimator();
            let span = obs.span(Stage::Kernel);
            let out = unique
                .iter()
                .map(|t| {
                    est.estimate_twig_with(&mut ws, t.as_ref())
                        .map_err(Into::into)
                })
                .collect();
            drop(span);
            self.put_ws(ws);
            out
        } else {
            let bins = bin_by_cost(&unique, workers);
            let parts: Vec<Vec<(usize, Result<Estimate>)>> = bins
                .par_iter()
                .map(|bin| {
                    let mut ws = self.take_ws();
                    let est = self.db.estimator();
                    let span = obs.span(Stage::Kernel);
                    let out = bin
                        .iter()
                        .map(|&i| {
                            let res = est
                                .estimate_twig_with(&mut ws, unique[i].as_ref())
                                .map_err(Into::into);
                            (i, res)
                        })
                        .collect();
                    drop(span);
                    self.put_ws(ws);
                    out
                })
                .collect();
            let mut results: Vec<Option<Result<Estimate>>> = vec![None; unique.len()];
            for (i, r) in parts.into_iter().flatten() {
                results[i] = Some(r);
            }
            results
                .into_iter()
                .map(|r| r.expect("every unique index lands in exactly one bin")) // xlint: allow(no-panic, "bin_by_cost places each index of 0..unique.len() exactly once by construction")
                .collect()
        };

        // Fan each distinct result back out to the slots that asked.
        let out: Vec<Result<Estimate>> = slots
            .into_iter()
            .map(|class| match &resolved[class] {
                Ok(i) => results[*i].clone(),
                Err(e) => Err(e.clone()),
            })
            .collect();
        let errors = out.iter().filter(|r| r.is_err()).count() as u64;
        self.note_estimates(out.len() as u64, errors);
        if obs.enabled() {
            self.db.metrics().batches.inc();
        }
        out
    }

    /// The serial batch loop, writing into a caller-owned buffer — the
    /// measurable form of the per-worker steady state: with a warmed
    /// pool, cached twigs and a buffer with capacity, the loop performs
    /// **zero heap allocations** (see `tests/alloc_discipline.rs`).
    pub fn estimate_batch_into(&self, batch: &[TwigRef<'_>], out: &mut Vec<Result<Estimate>>) {
        out.clear();
        let obs = self.db.recorder();
        let mut ws = self.take_ws();
        let est = self.db.estimator();
        let mut errors = 0u64;
        for &q in batch {
            // Sampled: per-item stage timing at full cadence would blow
            // the ≤5% telemetry-overhead budget on this warm loop.
            let mut clock = obs.stage_clock_sampled();
            let res: Result<Estimate> = match self.resolve(q) {
                Ok(twig) => {
                    clock.lap(obs, Stage::Prepare);
                    let r = est
                        .estimate_twig_with(&mut ws, twig.as_ref())
                        .map_err(Into::into);
                    clock.lap(obs, Stage::Kernel);
                    r
                }
                Err(e) => Err(e),
            };
            errors += res.is_err() as u64;
            out.push(res);
        }
        self.put_ws(ws);
        self.note_estimates(batch.len() as u64, errors);
        if obs.enabled() && !batch.is_empty() {
            self.db.metrics().batches.inc();
        }
    }

    /// One query on one pooled workspace (the parallel worker body).
    fn estimate_one(&self, q: TwigRef<'_>) -> Result<Estimate> {
        let obs = self.db.recorder();
        // Sampled cadence — see `estimate_batch_into`.
        let mut clock = obs.stage_clock_sampled();
        let twig = self.resolve(q)?;
        clock.lap(obs, Stage::Prepare);
        let mut ws = self.take_ws();
        let out: Result<Estimate> = self
            .db
            .estimator()
            .estimate_twig_with(&mut ws, twig.as_ref())
            .map_err(Into::into);
        clock.lap(obs, Stage::Kernel);
        self.put_ws(ws);
        self.note_estimates(1, out.is_err() as u64);
        out
    }

    /// Number of path strings currently cached.
    pub fn cached_twig_count(&self) -> usize {
        self.db.cached_twig_count()
    }

    /// Number of idle workspaces currently pooled.
    pub fn pooled_workspaces(&self) -> usize {
        self.pool.lock().expect("workspace pool lock").len() // xlint: allow(no-panic, "poisoned lock means another thread already panicked; propagating is intended")
    }

    /// Observability snapshot: prepared-cache counters, the database
    /// epoch, and the pool state.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            cache: self.db.prepared_stats(),
            epoch: self.db.epoch(),
            pooled_workspaces: self.pooled_workspaces(),
        }
    }

    /// The unified observability snapshot — everything
    /// [`EstimationService::stats`], [`Database::maintenance_stats`],
    /// [`crate::AdmissionFront::stats`] and the prepared-cache counters
    /// report, plus registry counters, per-stage latency quantiles and
    /// the recent event journal, gathered coherently. See [`Telemetry`].
    pub fn telemetry(&self) -> Telemetry {
        Telemetry::gather(
            self.db.recorder(),
            self.db.metrics(),
            self.db.epoch(),
            self.db.is_degraded(),
            self.db.quarantined().len(),
            self.pooled_workspaces(),
            self.db.prepared_stats(),
            self.db.maintenance_stats(),
        )
    }

    /// Estimates `path` stage by stage and reports the full provenance:
    /// the estimate, the resolved [`TwigId`] and epoch, how the query
    /// met the prepared cache (probed *before* this call touches it),
    /// the chosen plan, the kernel each twig edge ran on, and per-stage
    /// wall-clock timings. The estimate is bit-identical to
    /// [`EstimationService::estimate`] — tracing adds reporting, never
    /// different math. Stage timings read 0 when the recorder is
    /// disabled (and parse/canonicalize read 0 on a warm cache hit,
    /// where those stages genuinely never ran).
    pub fn estimate_traced(&self, path: &str) -> Result<TraceReport> {
        let db = self.db;
        let obs = db.recorder();
        let cache_tier = db.classify_path(path);
        let mut clock = obs.stage_clock();
        let (parse_ns, canonicalize_ns, prepared) = match cache_tier {
            CacheTier::Miss => {
                // Time the parse and canonicalize stages explicitly,
                // then hand the finished twig to the cache so the work
                // isn't paid twice (and the path still warms tier 1).
                let parsed = xmlest_query::parse_path(path).map_err(crate::error::Error::from)?;
                let parse_ns = clock.lap(obs, Stage::Parse);
                let mut canonical = Some(parsed.canonicalize());
                let canonicalize_ns = clock.lap(obs, Stage::Canonicalize);
                let prepared = db.prepare_path_with(path, move || {
                    canonical
                        .take()
                        .ok_or_else(|| Error::Service("canonical twig consumed twice".into()))
                })?;
                (parse_ns, canonicalize_ns, prepared)
            }
            // Warm or stale: the cache path never parses (stale entries
            // re-resolve from their interned twig), so those stages
            // honestly read 0.
            CacheTier::PathHit | CacheTier::Stale => (0, 0, db.prepare(path)?),
        };
        let prepare_ns = clock.lap(obs, Stage::Prepare);

        // Single-node patterns have no join order to choose; everything
        // else gets the memoized cheapest plan (plan_ns is ~0 when the
        // plan was already memoized for this twig + epoch).
        let plan = if prepared.twig().children.is_empty() {
            None
        } else {
            Some(db.planner().best_plan(&prepared)?)
        };
        let plan_ns = clock.lap(obs, Stage::Plan);

        let mut ws = self.take_ws();
        let res = db.estimator().estimate_twig_with(&mut ws, prepared.twig());
        let kernel_ns = clock.lap(obs, Stage::Kernel);
        self.put_ws(ws);
        self.note_estimates(1, res.is_err() as u64);
        let estimate = res?;

        let edges = edge_kernels(prepared.twig(), db.summaries());
        Ok(TraceReport {
            estimate,
            twig_id: prepared.id(),
            epoch: db.epoch(),
            cache_tier,
            plan,
            edges,
            parse_ns,
            canonicalize_ns,
            prepare_ns,
            plan_ns,
            kernel_ns,
        })
    }

    /// Grid maintenance snapshot: policy, slack occupancy, drift vs.
    /// threshold, stable/moving path counters
    /// ([`crate::maintenance::MaintenanceStats`]). The manual refresh
    /// entry point is [`Database::refresh_grid`] — a mutation, so it
    /// lives on the (mutably held) database, not the shared service.
    pub fn maintenance_stats(&self) -> crate::maintenance::MaintenanceStats {
        self.db.maintenance_stats()
    }

    /// Whether the underlying database is serving degraded: documents
    /// quarantined by [`Database::open_catalog_degraded`] estimate as
    /// absent until repaired.
    pub fn is_degraded(&self) -> bool {
        self.db.is_degraded()
    }

    /// The quarantined documents behind [`EstimationService::is_degraded`].
    pub fn quarantined(&self) -> &[xmlest_core::QuarantinedShard] {
        self.db.quarantined()
    }
}

/// Snapshot of the service's serving state ([`EstimationService::stats`]).
///
/// A thin view over the unified [`crate::telemetry::Telemetry`]
/// surface (see [`crate::telemetry::Telemetry::service_stats`]).
///
/// Reset contract: the embedded [`CacheStats`] counters are monotonic
/// for the lifetime of the database (they survive epoch bumps and
/// rebuilds); `epoch` and `pooled_workspaces` are gauges.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Prepared-query cache counters (hits, misses, evictions, epoch
    /// invalidations, live entries).
    pub cache: CacheStats,
    /// Database epoch the cache is validating against.
    pub epoch: u64,
    /// Idle workspaces currently pooled.
    pub pooled_workspaces: usize,
}

/// A resolved query: shared prepared entry or caller-borrowed twig.
enum ResolvedTwig<'a> {
    Prepared(Arc<PreparedQuery>),
    Borrowed(&'a TwigNode),
}

impl ResolvedTwig<'_> {
    fn as_ref(&self) -> &TwigNode {
        match self {
            ResolvedTwig::Prepared(p) => p.twig(),
            ResolvedTwig::Borrowed(t) => t,
        }
    }

    /// Identity for batch dedup: prepared queries carry a stable
    /// interned [`TwigId`] (canonically equivalent paths share one);
    /// caller-borrowed twigs dedup by address — the same `&TwigNode`
    /// repeated in a batch is the same pattern, while equal-but-distinct
    /// borrowed twigs conservatively stay separate.
    fn dedup_key(&self) -> DedupKey {
        match self {
            ResolvedTwig::Prepared(p) => DedupKey::Prepared(p.id()),
            ResolvedTwig::Borrowed(t) => DedupKey::Borrowed(*t as *const TwigNode),
        }
    }
}

/// Dedup identity of a resolved batch slot (see
/// [`ResolvedTwig::dedup_key`]).
#[derive(PartialEq, Eq, Hash)]
enum DedupKey {
    Prepared(TwigId),
    Borrowed(*const TwigNode),
}

/// Pre-resolution identity of a batch slot: path slots by string
/// content (hashing a short path is far cheaper than even a warm
/// prepared-cache probe), borrowed twigs by address.
#[derive(PartialEq, Eq, Hash)]
enum RefKey<'a> {
    Path(&'a str),
    Twig(*const TwigNode),
}

impl<'a> RefKey<'a> {
    fn of(q: TwigRef<'a>) -> Self {
        match q {
            TwigRef::Path(p) => RefKey::Path(p),
            TwigRef::Twig(t) => RefKey::Twig(t as *const TwigNode),
        }
    }
}

/// Splits the distinct work items into at most `workers` bins with
/// near-equal total cost, using twig node count as the cost proxy (the
/// estimator walks every pattern node, joining histograms at each):
/// greedy longest-first into the currently lightest bin. Every index in
/// `0..unique.len()` lands in exactly one bin.
fn bin_by_cost(unique: &[ResolvedTwig<'_>], workers: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..unique.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(unique[i].as_ref().node_count()));
    let n_bins = workers.min(unique.len()).max(1);
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); n_bins];
    let mut load = vec![0usize; n_bins];
    for i in order {
        let lightest = (0..n_bins).min_by_key(|&b| load[b]).unwrap_or(0);
        load[lightest] += unique[i].as_ref().node_count();
        bins[lightest].push(i);
    }
    bins
}

// ---- the admission-batched front --------------------------------------

/// Tuning for an [`AdmissionFront`]. The defaults target the serving
/// shape the module docs describe: many concurrent clients submitting
/// one path each, coalesced into batches without a visible latency tax.
#[derive(Debug, Clone)]
pub struct AdmissionOptions {
    /// Worker threads draining the queue; `None` sizes to the machine
    /// (`std::thread::available_parallelism`).
    pub workers: Option<usize>,
    /// Bound on queued (admitted, not yet served) requests. A full
    /// queue blocks submitters — backpressure, not unbounded buffering.
    pub queue_depth: usize,
    /// Most requests one worker coalesces into a single batch call.
    pub batch_max: usize,
    /// How long a worker holding a non-empty, non-full batch waits for
    /// one more arrival before serving it — the latency budget traded
    /// for coalescing. Zero serves whatever drained immediately.
    pub batch_window: Duration,
}

impl Default for AdmissionOptions {
    fn default() -> Self {
        AdmissionOptions {
            workers: None,
            queue_depth: 1024,
            batch_max: 64,
            batch_window: Duration::from_micros(200),
        }
    }
}

/// One admitted request: the path plus the submitter's reply slot.
struct AdmissionRequest {
    path: String,
    reply: mpsc::Sender<Result<Estimate>>,
}

#[derive(Default)]
struct FrontCounters {
    admitted: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
}

/// Counter snapshot of an [`AdmissionFront`]
/// ([`AdmissionFront::stats`]).
///
/// Reset contract: all three fields are monotonic counters, never
/// reset while the front is alive. `AdmissionFront::stats` reads this
/// front's own counters; [`crate::telemetry::Telemetry::front_stats`]
/// reads the registry-mirrored `xmlest_front_*` counters, which
/// aggregate every front attached to the same database.
#[derive(Debug, Clone, Copy)]
pub struct FrontStats {
    /// Requests served through the queue.
    pub admitted: u64,
    /// Batch calls those requests were coalesced into.
    pub batches: u64,
    /// Requests that rode an already-open batch (admitted − batches).
    pub coalesced: u64,
}

/// The admission-batched service front: a bounded request queue whose
/// worker pool coalesces concurrent arrivals into
/// [`Snapshot::estimate_batch_with`] calls under a small latency
/// budget.
///
/// Each worker drains whatever is queued (up to
/// [`AdmissionOptions::batch_max`]), optionally waits
/// [`AdmissionOptions::batch_window`] for one more arrival, loads the
/// current snapshot **once**, and serves the whole batch against it —
/// so the per-request snapshot load, dedup setup and workspace warmup
/// amortize across the batch, and every request in a batch observes one
/// consistent epoch. Results are bit-identical to direct
/// [`Snapshot::estimate`] calls: batching changes scheduling, never
/// math.
///
/// [`Snapshot::estimate_batch_with`]: crate::snapshot::Snapshot::estimate_batch_with
/// [`Snapshot::estimate`]: crate::snapshot::Snapshot::estimate
pub struct AdmissionFront {
    queue: Option<crossbeam::channel::Sender<AdmissionRequest>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<FrontCounters>,
}

impl std::fmt::Debug for AdmissionFront {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionFront")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

fn front_gone() -> Error {
    Error::Service("admission front is gone".into())
}

impl AdmissionFront {
    /// Spawns the worker pool over a serving cell (obtain one from
    /// [`Database::serving`] or a `MaintenanceWorker`). The front holds
    /// only the cell — mutations publish through it concurrently and
    /// the next batch simply loads the newer snapshot.
    ///
    /// [`Database::serving`]: crate::db::Database::serving
    pub fn new(serving: Arc<SnapshotCell>, opts: AdmissionOptions) -> AdmissionFront {
        let workers = opts
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .max(1);
        let (tx, rx) = crossbeam::channel::bounded::<AdmissionRequest>(opts.queue_depth.max(1));
        let stats = Arc::new(FrontCounters::default());
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let serving = serving.clone();
                let stats = stats.clone();
                let batch_max = opts.batch_max.max(1);
                let window = opts.batch_window;
                std::thread::spawn(move || worker_loop(&rx, &serving, &stats, batch_max, window))
            })
            .collect();
        AdmissionFront {
            queue: Some(tx),
            workers: handles,
            stats,
        }
    }

    /// Submits one path and blocks until its batch is served. A full
    /// queue blocks admission (backpressure); the result is
    /// bit-identical to `serving.current().estimate(path)`.
    pub fn estimate(&self, path: &str) -> Result<Estimate> {
        let Some(queue) = self.queue.as_ref() else {
            return Err(front_gone());
        };
        let (reply, rx) = mpsc::channel();
        queue
            .send(AdmissionRequest {
                path: path.to_owned(),
                reply,
            })
            .map_err(|_| front_gone())?;
        rx.recv().map_err(|_| front_gone())?
    }

    /// Coalescing counters so far.
    pub fn stats(&self) -> FrontStats {
        FrontStats {
            admitted: self.stats.admitted.load(Ordering::Relaxed),
            batches: self.stats.batches.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
        }
    }
}

impl Drop for AdmissionFront {
    fn drop(&mut self) {
        // Disconnect the queue first: workers drain what was admitted,
        // then exit on the hung-up channel.
        self.queue = None;
        for handle in std::mem::take(&mut self.workers) {
            let _ = handle.join();
        }
    }
}

/// One admission worker: block for the first request, drain the queue's
/// backlog, optionally hold the batch open for one latency window, then
/// serve everything against a single snapshot load.
fn worker_loop(
    rx: &crossbeam::channel::Receiver<AdmissionRequest>,
    serving: &SnapshotCell,
    stats: &FrontCounters,
    batch_max: usize,
    window: Duration,
) {
    let mut ws = TwigWorkspace::default();
    let mut batch: Vec<AdmissionRequest> = Vec::with_capacity(batch_max);
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while batch.len() < batch_max {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        if batch.len() < batch_max && !window.is_zero() {
            // The latency budget: one bounded wait for a coalescing
            // partner, then drain whatever else arrived meanwhile.
            if let Ok(req) = rx.recv_timeout(window) {
                batch.push(req);
                while batch.len() < batch_max {
                    match rx.try_recv() {
                        Ok(req) => batch.push(req),
                        Err(_) => break,
                    }
                }
            }
        }
        stats
            .admitted
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats
            .coalesced
            .fetch_add(batch.len() as u64 - 1, Ordering::Relaxed);
        let snapshot = serving.current();
        // Mirror the per-front counters into the database's registry
        // (shared across every front of this database), so the unified
        // telemetry reports total front traffic.
        if snapshot.recorder().enabled() {
            let m = snapshot.metrics();
            m.front_admitted.add(batch.len() as u64);
            m.front_batches.inc();
            m.front_coalesced.add(batch.len() as u64 - 1);
        }
        let paths: Vec<&str> = batch.iter().map(|r| r.path.as_str()).collect();
        let results = snapshot.estimate_batch_with(&mut ws, &paths);
        for (req, res) in batch.drain(..).zip(results) {
            // A submitter that gave up (dropped its receiver) is fine.
            let _ = req.reply.send(res);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlest_core::SummaryConfig;

    fn collection() -> Database {
        let mut docs = Vec::new();
        for i in 0..6 {
            let mut xml = String::from("<doc>");
            for _ in 0..=i {
                xml.push_str("<sec><p/><p/><note/></sec>");
            }
            xml.push_str("</doc>");
            docs.push(xml);
        }
        let named: Vec<(String, String)> = docs
            .into_iter()
            .enumerate()
            .map(|(i, xml)| (format!("d{i}.xml"), xml))
            .collect();
        Database::load_documents(
            named.iter().map(|(n, x)| (n.as_str(), x.as_str())),
            &SummaryConfig::paper_defaults().with_grid_size(8),
        )
        .unwrap()
    }

    #[test]
    fn batch_matches_single_shot_exactly() {
        let db = collection();
        let svc = db.service();
        let paths = ["//doc//p", "//sec//p", "//doc//note", "//sec//note"];
        // A batch big enough to take the parallel path.
        let batch: Vec<TwigRef> = paths
            .iter()
            .cycle()
            .take(48)
            .map(|&p| TwigRef::Path(p))
            .collect();
        let results = svc.estimate_batch(&batch);
        assert_eq!(results.len(), 48);
        for (q, r) in batch.iter().zip(&results) {
            let TwigRef::Path(p) = q else { unreachable!() };
            let single = db.estimate(p).unwrap().value;
            let got = r.as_ref().unwrap().value;
            assert_eq!(got.to_bits(), single.to_bits(), "{p}");
        }
        // The cache holds each distinct path once.
        assert_eq!(svc.cached_twig_count(), paths.len());
        // Pool never exceeds worker count, and everything was returned.
        assert!(svc.pooled_workspaces() >= 1);
    }

    #[test]
    fn deduped_batch_is_bit_identical_to_per_query_calls() {
        let db = collection();
        let svc = db.service();
        // 1024 slots drawn from 4 distinct paths — the serving shape the
        // dedup targets. Include a canonical variant pair: both spell
        // the same twig and must collapse to one TwigId.
        let paths = ["//doc//p", "//sec//p", "//doc//note", "/doc//sec//p"];
        let batch: Vec<TwigRef> = (0..1024).map(|i| TwigRef::Path(paths[i % 4])).collect();
        let results = svc.estimate_batch(&batch);
        assert_eq!(results.len(), 1024);
        for (q, r) in batch.iter().zip(&results) {
            let TwigRef::Path(p) = q else { unreachable!() };
            let single = db.estimate(p).unwrap().value;
            assert_eq!(r.as_ref().unwrap().value.to_bits(), single.to_bits(), "{p}");
        }
        assert_eq!(svc.cached_twig_count(), paths.len());
    }

    #[test]
    fn parallel_batch_reports_errors_in_matching_slots() {
        let db = collection();
        let svc = db.service();
        // Parallel-scale batch with failures interleaved among dupes:
        // every error must come back in its own slot, not shift results.
        let batch: Vec<TwigRef> = (0..64)
            .map(|i| {
                if i % 5 == 3 {
                    TwigRef::Path("//sec//GHOST")
                } else {
                    TwigRef::Path("//sec//p")
                }
            })
            .collect();
        let results = svc.estimate_batch(&batch);
        let want = db.estimate("//sec//p").unwrap().value;
        for (i, r) in results.iter().enumerate() {
            if i % 5 == 3 {
                assert!(r.is_err(), "slot {i}");
            } else {
                assert_eq!(
                    r.as_ref().unwrap().value.to_bits(),
                    want.to_bits(),
                    "slot {i}"
                );
            }
        }
    }

    #[test]
    fn borrowed_twigs_dedup_by_address_at_parallel_scale() {
        let db = collection();
        let svc = db.service();
        let parsed = xmlest_query::parse_path("//sec//p").unwrap();
        let batch: Vec<TwigRef> = (0..48)
            .map(|i| {
                if i % 2 == 0 {
                    TwigRef::Twig(&parsed)
                } else {
                    TwigRef::Path("//sec//p")
                }
            })
            .collect();
        let results = svc.estimate_batch(&batch);
        let want = db.estimate("//sec//p").unwrap().value;
        for r in &results {
            assert_eq!(r.as_ref().unwrap().value.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn batch_reports_per_query_errors_in_place() {
        let db = collection();
        let svc = db.service();
        let batch = [
            TwigRef::Path("//sec//p"),
            TwigRef::Path("//sec//GHOST"),
            TwigRef::Path("//doc//p"),
        ];
        let results = svc.estimate_batch(&batch);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn pre_parsed_twigs_and_strings_mix() {
        let db = collection();
        let svc = db.service();
        let parsed = xmlest_query::parse_path("//sec//p").unwrap();
        let batch = [TwigRef::Twig(&parsed), TwigRef::Path("//sec//p")];
        let results = svc.estimate_batch(&batch);
        let a = results[0].as_ref().unwrap().value;
        let b = results[1].as_ref().unwrap().value;
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn service_works_on_catalog_opened_database() {
        let db = collection();
        let bytes = db.save_catalog();
        let reopened = Database::open_catalog(&bytes).unwrap();
        let svc = reopened.service();
        let want = db.estimate("//sec//p").unwrap().value;
        let got = svc.estimate("//sec//p").unwrap().value;
        assert_eq!(got.to_bits(), want.to_bits());
    }
}
