//! The database object: document collection + catalog + indexes +
//! summaries, in a three-layer serving architecture.
//!
//! * **Data layer** — the (mega-)tree and the element index, used by
//!   exact counting and plan execution. Optional: a database opened from
//!   a persisted catalog ([`Database::open_catalog`]) has summaries but
//!   no data tree, and serves estimates only.
//! * **Shard layer** — per-document summary shards
//!   (`xmlest_core::shard`): each document is classified once, its shard
//!   summaries build on the shared grid in parallel, and the merged
//!   mega-tree view is an exact [`PositionHistogram::plus`]-style
//!   combination. [`Database::add_document`] / [`Database::remove_document`]
//!   re-merge from the stored classified lists — they never re-parse or
//!   re-classify the rest of the collection.
//! * **Serving layer** — the estimator over the merged summaries, the
//!   shared [`CoeffCache`], the prepared-query cache (repeated queries
//!   hit a canonical [`crate::prepared::PreparedQuery`] carrying the
//!   parsed twig, leaf resolutions and the memoized plan), and
//!   [`crate::service::EstimationService`] for batched estimation.
//!
//! Every state a cache can derive from — summaries, grid, coefficient
//! tables, plans — is versioned by the database **epoch**: a
//! monotonically increasing counter bumped by every collection mutation
//! ([`Database::add_document`], [`Database::remove_document`]) and by
//! [`Database::attach_dtd`] (which changes estimates in place). Cached
//! plans and prepared state carry the epoch they were derived under and
//! are transparently re-prepared on mismatch; coefficient tables bind to
//! the summaries generation ([`CoeffCache`]'s build id), which changes
//! exactly when the epoch-relevant summary state does.
//!
//! [`PositionHistogram::plus`]: xmlest_core::PositionHistogram::plus

use crate::error::{Error, Result};
use crate::maintenance::{
    MaintenanceState, MaintenanceStats, DEGRADED_AFTER_STRIKES, MAX_BACKOFF_SHIFT,
};
use crate::prepared::{LeafResolution, PreparedCache, PreparedQuery, TwigId};
use crate::snapshot::{Snapshot, SnapshotCell};
use crate::telemetry::{Metrics, Telemetry};
use rayon::prelude::*;
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use xmlest_core::catalog::{CatalogFile, CatalogShard, OpenReport, QuarantinedShard};
use xmlest_core::refresh::refresh_scoped;
use xmlest_core::shard::{
    build_shard_summaries, builtin_entry_count, classify_document, entry_names,
    make_collection_grid, matches_mega_root, merge_delta, merge_shards_stateful,
    DocumentSummaryInput, MergeState,
};
use xmlest_core::store::{CatalogStore, SkippedGeneration};
use xmlest_core::{CoeffCache, DriftTracker, Estimator, Grid, Summaries, SummaryConfig, TwigNode};
use xmlest_predicate::{BasePredicate, Catalog, PredExpr};
use xmlest_query::structural::Item;
use xmlest_query::{count_matches, parse_path};
use xmlest_xml::parser::parse_str;
use xmlest_xml::{ForestBuilder, Interval, NodeId, XmlTree};
use xmlest_xobs::{EventKind, Recorder, Stage};

/// Test-only fault injection: lets unit tests force a collection
/// rebuild to fail so the mutation rollback path is exercisable (no
/// valid input reaches the fallible steps' error arms naturally).
#[cfg(test)]
pub(crate) mod test_faults {
    /// Number of upcoming [`super::Database::from_collection`] calls to
    /// fail artificially (multi-shot: each failure decrements, so a
    /// test can arm a whole losing streak to exercise the backoff and
    /// degraded-flag escalation). Store 1 for the classic one-shot.
    pub(crate) static FAIL_REBUILDS: std::sync::atomic::AtomicU32 =
        std::sync::atomic::AtomicU32::new(0);

    /// Serializes tests that arm the (global) fault counter so an
    /// armed-but-unconsumed count can't leak into a parallel test.
    pub(crate) static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Consumes one armed failure, if any.
    pub(crate) fn take_rebuild_failure() -> bool {
        FAIL_REBUILDS
            .fetch_update(
                std::sync::atomic::Ordering::SeqCst,
                std::sync::atomic::Ordering::SeqCst,
                |n| n.checked_sub(1),
            )
            .is_ok()
    }
}

/// Element index: per catalog predicate, the matching nodes with their
/// intervals in document order — the input lists for structural joins.
#[derive(Debug, Default)]
pub struct ElementIndex {
    lists: BTreeMap<String, Vec<Item<NodeId>>>,
}

impl ElementIndex {
    /// Builds per-predicate interval lists over `tree` in document order.
    pub fn build(tree: &XmlTree, catalog: &Catalog) -> ElementIndex {
        let mut lists = BTreeMap::new();
        for entry in catalog.iter() {
            let items: Vec<Item<NodeId>> = entry
                .predicate
                .matches(tree)
                .into_iter()
                .map(|n| Item::new(tree.interval(n), n))
                .collect();
            lists.insert(entry.name.clone(), items);
        }
        ElementIndex { lists }
    }

    /// Builds the index for a sharded collection from the stored
    /// classified lists: tag entries concatenate each document's
    /// (shifted) matches without touching any tree (node ids equal
    /// positions, so the shifted start *is* the mega-tree id); only
    /// non-tag predicates fall back to a tree scan.
    fn build_sharded(tree: &XmlTree, catalog: &Catalog, shards: &[DocShard]) -> ElementIndex {
        let builtins = builtin_entry_count();
        let total: u64 = 1 + shards.iter().map(|s| s.summaries.tree_nodes()).sum::<u64>();
        let mut lists = BTreeMap::new();
        for (pos, entry) in catalog.iter().enumerate() {
            let items = match &entry.predicate {
                BasePredicate::Tag(_) if shards.iter().all(|s| s.source.is_some()) => {
                    let mut items: Vec<Item<NodeId>> = Vec::new();
                    if matches_mega_root(&entry.predicate) {
                        let iv = Interval::new(0, (total - 1) as u32);
                        items.push(Item::new(iv, NodeId(0)));
                    }
                    for shard in shards {
                        let input = &shard.source.as_ref().expect("checked above").input; // xlint: allow(no-panic, "match arm requires all shards sourced")
                        for iv in &input.entries[builtins + pos].intervals {
                            let shifted =
                                Interval::new(iv.start + shard.offset, iv.end + shard.offset);
                            items.push(Item::new(shifted, NodeId(shifted.start)));
                        }
                    }
                    items
                }
                pred => pred
                    .matches(tree)
                    .into_iter()
                    .map(|n| Item::new(tree.interval(n), n))
                    .collect(),
            };
            lists.insert(entry.name.clone(), items);
        }
        ElementIndex { lists }
    }

    /// Appends one document's classified matches to the lists —
    /// O(matches in the new document). Valid only for all-`Tag`
    /// catalogs (the collection case): the new document occupies the
    /// tail of the position space, so its items append in document
    /// order, and the only existing item that changes is the
    /// mega-root's, whose interval end grows to the new total.
    fn append_document(
        &mut self,
        catalog: &Catalog,
        input: &DocumentSummaryInput,
        offset: u32,
        new_total: u64,
    ) {
        let builtins = builtin_entry_count();
        for (pos, entry) in catalog.iter().enumerate() {
            let list = self.lists.entry(entry.name.clone()).or_default();
            if matches_mega_root(&entry.predicate) {
                if let Some(root_item) = list.first_mut() {
                    if root_item.interval.start == 0 {
                        root_item.interval.end = (new_total - 1) as u32;
                    }
                }
            }
            for iv in &input.entries[builtins + pos].intervals {
                let shifted = Interval::new(iv.start + offset, iv.end + offset);
                list.push(Item::new(shifted, NodeId(shifted.start)));
            }
        }
    }

    /// Drops every item at or past `offset` (the tail document) and
    /// shrinks the mega-root item's interval — the inverse of
    /// [`ElementIndex::append_document`], O(matches in the removed
    /// document) plus one binary search per list.
    fn truncate_document(&mut self, offset: u32, new_total: u64) {
        for list in self.lists.values_mut() {
            let keep = list.partition_point(|it| it.interval.start < offset);
            list.truncate(keep);
            if let Some(root_item) = list.first_mut() {
                if root_item.interval.start == 0 {
                    root_item.interval.end = (new_total - 1) as u32;
                }
            }
        }
    }

    /// The sorted interval list for a named predicate.
    pub fn get(&self, name: &str) -> Option<&[Item<NodeId>]> {
        self.lists.get(name).map(Vec::as_slice)
    }

    /// Number of indexed predicates.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether no predicate is indexed.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }
}

/// The data half of one document shard — retained for collections built
/// from documents so the collection can change without re-parsing; a
/// catalog-opened database has summaries only.
#[derive(Debug)]
struct ShardSource {
    tree: XmlTree,
    input: DocumentSummaryInput,
}

/// One document's shard: its summaries on the shared grid plus (when
/// available) the parsed tree and classified lists.
#[derive(Debug)]
struct DocShard {
    name: String,
    /// Global position offset of the document root in the mega-tree.
    offset: u32,
    summaries: Summaries,
    source: Option<ShardSource>,
}

/// What [`Database::open_store`] recovered: the generation served, the
/// (possibly degraded) open report for it, and any newer generations
/// that had to be skipped as unreadable.
#[derive(Debug, Clone, Default)]
pub struct StoreOpen {
    /// The generation number the database was opened from.
    pub generation: u64,
    /// Per-section damage report for that generation (clean when the
    /// strict open succeeded).
    pub report: OpenReport,
    /// Newer generations skipped because they failed validation, with
    /// reasons — evidence of torn or corrupted saves worth reporting.
    pub skipped: Vec<SkippedGeneration>,
}

/// Outcome of a [`Database::repair`] pass over re-supplied sources.
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// Documents rebuilt and released from quarantine.
    pub repaired: Vec<String>,
    /// `(document, reason)` for sources that could not repair their
    /// quarantine entry (wrong name, parse failure, node-count drift).
    pub rejected: Vec<(String, String)>,
}

/// A loaded database.
pub struct Database {
    /// The data tree (mega-tree for collections); `None` for databases
    /// opened from a persisted catalog, which serve estimates only.
    tree: Option<XmlTree>,
    catalog: Catalog,
    config: SummaryConfig,
    /// The merged serving view. `Arc`d so a published [`Snapshot`]
    /// shares it with zero copies; mutations install a successor `Arc`
    /// at their commit point, never mutate through this one (the one
    /// in-place writer, [`Database::attach_dtd`], goes through
    /// `Arc::make_mut`, which copies exactly when a snapshot still
    /// holds the previous view).
    summaries: Arc<Summaries>,
    /// Per-document shards (empty for single-document [`Database::load_str`]).
    shards: Vec<DocShard>,
    /// Whether this database was built as a mutable document collection
    /// (sources retained). Stays true when the collection is emptied, so
    /// `remove_document` down to zero then `add_document` works.
    collection: bool,
    index: ElementIndex,
    /// Memoized pH-join coefficient tables over `summaries`. Summaries
    /// are immutable between collection changes; every estimator handed
    /// out by [`Database::estimator`] shares this cache, and
    /// [`Database::save_catalog`] persists its tables. `Arc`d for the
    /// same reason as `summaries`: published snapshots share it (the
    /// cache is internally wait-free on hits and binds tables to the
    /// summaries generation, so sharing across epochs is safe).
    coeff_cache: Arc<CoeffCache>,
    /// Monotonic version of everything estimates derive from. Bumped by
    /// collection mutations and [`Database::attach_dtd`]; prepared
    /// queries and their memoized plans validate against it.
    epoch: u64,
    /// Prepared-query cache (canonical twig interner + two-tier cache,
    /// CLOCK-bounded string tier) serving [`Database::estimate`],
    /// [`Database::count`], the planner and the estimation service.
    /// Survives collection mutations — the epoch check re-prepares
    /// entries lazily.
    prepared: PreparedCache,
    /// Grid maintenance: drift accounting over the classified lists and
    /// the stable/moving path counters ([`crate::maintenance`]).
    maintenance: MaintenanceState,
    /// Documents whose shard sections were quarantined by a degraded
    /// catalog open ([`Database::open_catalog_degraded`]): the rest of
    /// the collection serves, these estimate as absent until
    /// [`Database::repair`] rebuilds them from re-supplied sources.
    quarantine: Vec<QuarantinedShard>,
    /// The merge-fold accumulators behind `summaries`
    /// ([`xmlest_core::shard::MergeState`]): lets the stable-append path
    /// extend the merged view by the new shard alone
    /// ([`merge_delta`] — O(new-doc cells)) instead of re-merging every
    /// shard. `None` when the serving view did not come from a stateful
    /// merge over exactly `shards` (monolithic builds, catalog opens,
    /// degraded re-merges); those fall back to the full merge, which
    /// re-establishes the state.
    merge_state: Option<MergeState>,
    /// Pre-append snapshots of the serving view, newest last (bounded by
    /// [`UNDO_DEPTH`]): removing the newest document pops one in O(1)
    /// instead of re-merging every surviving shard. Snapshots are moved,
    /// never cloned — each is the exact `(summaries, merge_state)` pair
    /// that served before its append, so the restore is bit-identical by
    /// construction. Every mutation other than a stable append/undo pair
    /// clears the stack.
    undo: VecDeque<AppendUndo>,
    /// The wait-free serving cell: every mutation commit publishes an
    /// immutable epoch-stamped [`Snapshot`] here by pointer swap.
    /// Concurrent readers ([`Database::serving`] holders — the admission
    /// front, the maintenance worker's clients) estimate against the
    /// cell without ever taking a lock; the cell's identity survives
    /// rebuilds ([`Database::replace_rebuilt`] carries it across), so a
    /// handle captured once stays live for the database's lifetime.
    serving: Arc<SnapshotCell>,
    /// The observability core ([`xmlest_xobs`]): typed metric registry,
    /// per-stage latency histograms, and the structured event journal.
    /// One recorder per database, shared (by handle clone) with every
    /// published snapshot, the prepared cache, services and fronts —
    /// so [`Database::telemetry`] is one coherent view no matter which
    /// entry point did the work. Survives rebuilds like `serving` does.
    obs: Recorder,
    /// Engine counter handles registered in `obs` (estimates, errors,
    /// batches, publishes, front traffic).
    metrics: Metrics,
}

/// How many stable appends [`Database::remove_document`] can undo in
/// O(1) before falling back to a full re-merge of the surviving shards.
const UNDO_DEPTH: usize = 8;

/// One stable append's pre-append serving state (see `Database::undo`).
struct AppendUndo {
    /// Shard count before the append — the index of the one shard whose
    /// removal this snapshot undoes.
    shards_before: usize,
    /// `Summaries::len()` of the snapshot; a catalog extended since the
    /// capture yields a merged view with more entries, so a mismatch
    /// invalidates the snapshot.
    entry_count: usize,
    summaries: Arc<Summaries>,
    merge_state: Option<MergeState>,
}

/// Builds the initial serving cell for a freshly constructed database:
/// epoch-1 snapshot over the just-built summaries, empty frozen twig
/// view (nothing is prepared yet).
fn initial_serving(
    degraded: bool,
    summaries: &Arc<Summaries>,
    coeffs: &Arc<CoeffCache>,
    obs: &Recorder,
    metrics: &Metrics,
) -> Arc<SnapshotCell> {
    SnapshotCell::initial(Snapshot::new(
        1,
        degraded,
        summaries.clone(),
        coeffs.clone(),
        Arc::default(),
        obs.clone(),
        metrics.clone(),
    ))
}

impl Database {
    /// Builds a database from an existing tree and catalog (monolithic:
    /// one document, no shards).
    pub fn new(tree: XmlTree, catalog: Catalog, config: &SummaryConfig) -> Result<Database> {
        let summaries = Arc::new(Summaries::build(&tree, &catalog, config)?);
        let index = ElementIndex::build(&tree, &catalog);
        let maintenance = MaintenanceState::new(summaries.grid().g());
        let coeff_cache = Arc::new(CoeffCache::new());
        let obs = Recorder::new();
        let metrics = Metrics::register(&obs);
        let serving = initial_serving(false, &summaries, &coeff_cache, &obs, &metrics);
        Ok(Database {
            tree: Some(tree),
            catalog,
            config: config.clone(),
            summaries,
            shards: Vec::new(),
            collection: false,
            index,
            coeff_cache,
            epoch: 1,
            prepared: PreparedCache::with_recorder(crate::prepared::PREPARED_CACHE_CAP, &obs),
            maintenance,
            quarantine: Vec::new(),
            merge_state: None,
            undo: VecDeque::new(),
            serving,
            obs,
            metrics,
        })
    }

    /// Parses an XML string, defines one predicate per element tag, and
    /// builds summaries with the given config.
    pub fn load_str(xml: &str, config: &SummaryConfig) -> Result<Database> {
        let tree = parse_str(xml)?;
        let mut catalog = Catalog::new();
        catalog.define_all_tags(&tree);
        Database::new(tree, catalog, config)
    }

    /// Loads a *collection* of documents, merged into the paper's
    /// mega-tree (Section 3.1): one synthetic root, each document a
    /// child subtree, one numbering space, one histogram set.
    ///
    /// Built **sharded**: each document is parsed and classified once,
    /// per-document summary shards build in parallel on the shared grid,
    /// and the serving view is their exact merge (within 1e-6 of the
    /// monolithic mega-tree build; the shards stay available through
    /// [`Database::shard_summaries`] and make [`Database::add_document`] /
    /// [`Database::remove_document`] incremental).
    pub fn load_documents<'a>(
        docs: impl IntoIterator<Item = (&'a str, &'a str)>,
        config: &SummaryConfig,
    ) -> Result<Database> {
        let named: Vec<(&str, &str)> = docs.into_iter().collect();
        // Parse every document in parallel (each into its own tree).
        let parsed: Vec<xmlest_xml::Result<XmlTree>> =
            named.par_iter().map(|&(_, xml)| parse_str(xml)).collect();
        let mut catalog = Catalog::new();
        let mut trees = Vec::with_capacity(parsed.len());
        for tree in parsed {
            let tree = tree?;
            catalog.define_all_tags(&tree);
            trees.push(tree);
        }
        // The synthetic root is part of the mega-tree's tag set.
        catalog.define(
            xmlest_xml::MEGA_ROOT_TAG,
            BasePredicate::Tag(xmlest_xml::MEGA_ROOT_TAG.to_owned()),
        );

        // Classify each document once, in parallel.
        let inputs: Vec<DocumentSummaryInput> = trees
            .par_iter()
            .map(|tree| classify_document(tree, &catalog))
            .collect();

        let sources = named
            .iter()
            .zip(trees.into_iter().zip(inputs))
            .map(|(&(name, _), (tree, input))| (name.to_owned(), ShardSource { tree, input }))
            .collect();
        Database::from_collection(catalog, config.clone(), sources, None).map_err(|(e, _)| e)
    }

    /// Derives every collection-level structure from per-document state:
    /// offsets, the shared grid, shard summaries (parallel across
    /// documents), the merged view, the mega-tree (replayed from the
    /// already-parsed document trees — no XML re-parse), the element
    /// index (concatenated from the classified lists), and the drift
    /// tracker. Classification of existing documents is never repeated.
    ///
    /// `pinned_grid` keeps an existing grid instead of re-deriving one
    /// (the slack policy's removal path: positions compact but the
    /// boundaries stay put); `None` derives the grid under the config's
    /// policy, which is what a refresh and a cold build both do — the
    /// derivation is deterministic, so the two agree exactly.
    ///
    /// On failure the untouched `sources` come back with the error, so
    /// mutating callers ([`Database::add_document`] /
    /// [`Database::remove_document`]) can restore their previous state —
    /// a failed rebuild never corrupts a serving database.
    fn from_collection(
        catalog: Catalog,
        config: SummaryConfig,
        sources: Vec<(String, ShardSource)>,
        pinned_grid: Option<Grid>,
    ) -> std::result::Result<Database, (Error, Vec<(String, ShardSource)>)> {
        // Everything fallible runs in here, borrowing `sources`; the
        // sources are consumed only after the last `?`.
        type Parts = (
            Vec<u32>,
            Vec<Summaries>,
            Summaries,
            MergeState,
            XmlTree,
            DriftTracker,
        );
        let fallible = || -> Result<Parts> {
            #[cfg(test)]
            if test_faults::take_rebuild_failure() {
                return Err(Error::Plan("injected rebuild failure (test)".into()));
            }

            // Offsets: the mega-root occupies position 0; each
            // document's nodes follow contiguously.
            let mut offsets = Vec::with_capacity(sources.len());
            let mut offset = 1u32;
            for (_, src) in &sources {
                offsets.push(offset);
                offset += src.input.node_count;
            }

            let inputs: Vec<(&DocumentSummaryInput, u32)> = sources
                .iter()
                .zip(&offsets)
                .map(|((_, src), &off)| (&src.input, off))
                .collect();
            let grid = match pinned_grid {
                Some(g) => g,
                None => make_collection_grid(&inputs, &catalog, &config)?,
            };
            let tracker = DriftTracker::from_inputs(&grid, &catalog, &inputs);

            // Per-document shard builds fan out across cores.
            let built: Vec<Summaries> = inputs
                .par_iter()
                .map(|&(input, off)| build_shard_summaries(input, off, &grid, &catalog, &config))
                .collect();

            let shard_refs: Vec<&Summaries> = built.iter().collect();
            let (summaries, merge_state) =
                merge_shards_stateful(&shard_refs, &grid, &catalog, &config)?;

            // Mega-tree: replay the stored document trees
            // (document-order cost, no XML parsing). Exact counting and
            // plan execution read this; estimation never does.
            let mut fb = ForestBuilder::new();
            for (name, src) in &sources {
                fb.add_tree(name, &src.tree)?;
            }
            let tree = fb.finish()?.into_tree();
            Ok((offsets, built, summaries, merge_state, tree, tracker))
        };
        let (offsets, built, summaries, merge_state, tree, tracker) = match fallible() {
            Ok(parts) => parts,
            Err(e) => return Err((e, sources)),
        };

        let shards: Vec<DocShard> = sources
            .into_iter()
            .zip(offsets)
            .zip(built)
            .map(|(((name, src), offset), summaries)| DocShard {
                name,
                offset,
                summaries,
                source: Some(src),
            })
            .collect();
        let index = ElementIndex::build_sharded(&tree, &catalog, &shards);
        let summaries = Arc::new(summaries);
        let coeff_cache = Arc::new(CoeffCache::new());
        let obs = Recorder::new();
        let metrics = Metrics::register(&obs);
        let serving = initial_serving(false, &summaries, &coeff_cache, &obs, &metrics);
        Ok(Database {
            tree: Some(tree),
            catalog,
            config,
            summaries,
            shards,
            collection: true,
            index,
            coeff_cache,
            epoch: 1,
            prepared: PreparedCache::with_recorder(crate::prepared::PREPARED_CACHE_CAP, &obs),
            maintenance: MaintenanceState::with_tracker(tracker),
            quarantine: Vec::new(),
            merge_state: Some(merge_state),
            undo: VecDeque::new(),
            serving,
            obs,
            metrics,
        })
    }

    /// Dismantles the shards into rebuild inputs, keeping each shard's
    /// derived state (offset + summaries) aside so a failed rebuild can
    /// restore the previous serving state via
    /// [`Database::restore_shards`]. Fails with [`Error::ServingOnly`]
    /// — **before** touching anything — when any shard lacks its
    /// source (catalog-opened or repaired-in-place shards): a rebuild
    /// has nothing to rebuild those documents from.
    #[allow(clippy::type_complexity)]
    fn dismantle_shards(&mut self) -> Result<(Vec<(String, ShardSource)>, Vec<(u32, Summaries)>)> {
        if let Some(unsourced) = self.shards.iter().find(|s| s.source.is_none()) {
            return Err(Error::ServingOnly(format!(
                "document {:?} has summaries but no source tree; \
                 rebuilds need every document's source (re-ingest the collection to mutate)",
                unsourced.name
            )));
        }
        let mut sources = Vec::with_capacity(self.shards.len());
        let mut derived = Vec::with_capacity(self.shards.len());
        for s in std::mem::take(&mut self.shards) {
            derived.push((s.offset, s.summaries));
            let source = s.source.expect("sources checked above"); // xlint: allow(no-panic, "loop above returned ServingOnly for any unsourced shard")
            sources.push((s.name, source));
        }
        Ok((sources, derived))
    }

    /// Reassembles `self.shards` from the parts
    /// [`Database::dismantle_shards`] split off — the rollback half of a
    /// failed collection mutation.
    fn restore_shards(
        &mut self,
        sources: Vec<(String, ShardSource)>,
        derived: Vec<(u32, Summaries)>,
    ) {
        self.shards = sources
            .into_iter()
            .zip(derived)
            .map(|((name, source), (offset, summaries))| DocShard {
                name,
                offset,
                summaries,
                source: Some(source),
            })
            .collect();
    }

    /// Adds a document to the collection. Parses and classifies only the
    /// new document; what happens next depends on the grid policy
    /// ([`crate::maintenance`]):
    ///
    /// * **Stable append** (slack policy, document fits in the slack):
    ///   the new document's shard builds on the *existing* grid, every
    ///   existing shard summary is reused verbatim (zero re-bucketing),
    ///   the mega-tree and element index extend in place — O(new
    ///   document) plus the shard merge.
    /// * **Moving append** (static policy, or the document overflows the
    ///   slack): the grid re-derives under the policy and every shard
    ///   rebuilds from its stored classified lists (never re-parsed,
    ///   never re-classified).
    ///
    /// Either way the drift tracker ingests the new document and, under
    /// an auto-refresh policy, a threshold crossing triggers an
    /// equi-depth refresh before returning.
    ///
    /// Only databases built with [`Database::load_documents`] support
    /// this; single-document and catalog-opened databases return
    /// [`Error::NoData`].
    pub fn add_document(&mut self, name: impl Into<String>, xml: &str) -> Result<()> {
        self.require_collection()?;
        let doc_tree = parse_str(xml)?;

        // New tags extend the catalog; stored classifications realign by
        // entry name (a tag absent from a document's interner matches
        // nothing there, so inserted entries are exactly empty).
        let old_names = entry_names(&self.catalog);
        self.catalog.define_all_tags(&doc_tree);
        let new_names = entry_names(&self.catalog);
        if old_names != new_names {
            // Check every source *before* realigning any shard: a
            // partial realignment would leave some stored lists on the
            // old entry order against the already-extended catalog.
            if let Some(unsourced) = self.shards.iter().find(|s| s.source.is_none()) {
                return Err(Error::ServingOnly(format!(
                    "document {:?} has no stored source to realign to the extended catalog",
                    unsourced.name
                )));
            }
            let index_of: HashMap<&str, usize> = old_names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.as_str(), i))
                .collect();
            for shard in &mut self.shards {
                let src = shard.source.as_mut().expect("sources checked above"); // xlint: allow(no-panic, "loop above returned ServingOnly for any unsourced shard")
                let mut realigned = Vec::with_capacity(new_names.len());
                for n in &new_names {
                    realigned.push(match index_of.get(n.as_str()) {
                        Some(&i) => std::mem::take(&mut src.input.entries[i]),
                        None => Default::default(),
                    });
                }
                src.input.entries = realigned;
            }
        }

        let input = classify_document(&doc_tree, &self.catalog);

        // Stable-append path: reuse the grid and every existing shard.
        let occupied = self.summaries.tree_nodes();
        let capacity = self.summaries.grid().max_pos() as u64 + 1;
        let fits = occupied + input.node_count as u64 <= capacity;
        if self.config.policy.is_slack() && self.index_appendable() {
            if fits {
                self.append_within_slack(name.into(), doc_tree, input)?;
                self.auto_refresh_if_needed();
                return Ok(());
            }
            self.maintenance.counters.overflow_appends += 1;
        }

        // Moving path: full rebuild with a re-derived grid.
        let (mut sources, derived) = self.dismantle_shards()?;
        sources.push((
            name.into(),
            ShardSource {
                tree: doc_tree,
                input,
            },
        ));
        match Database::from_collection(self.catalog.clone(), self.config.clone(), sources, None) {
            Ok(rebuilt) => {
                self.replace_rebuilt(rebuilt);
                self.maintenance.counters.grid_moves += 1;
                Ok(())
            }
            Err((e, mut sources)) => {
                // Atomic failure: drop the document we tried to add and
                // restore the previous serving state (the catalog may
                // retain the new document's tags — they summarize as
                // unknown until a successful add defines them).
                sources.pop();
                self.restore_shards(sources, derived);
                Err(e)
            }
        }
    }

    /// The stable-append commit: build the new document's shard on the
    /// existing grid, extend the merged view by that shard alone
    /// ([`merge_delta`] resuming the carried [`MergeState`] —
    /// O(new-doc cells), bit-identical to re-merging every shard), and
    /// extend the mega-tree and element index in place, ingest drift.
    /// A database without a carried state (e.g. freshly repaired) takes
    /// the full stateful merge once, which re-establishes it.
    /// All fallible work happens before the first mutation.
    fn append_within_slack(
        &mut self,
        name: String,
        doc_tree: XmlTree,
        input: DocumentSummaryInput,
    ) -> Result<()> {
        let grid = self.summaries.grid().clone();
        let offset = self.summaries.tree_nodes() as u32;
        let new_shard = build_shard_summaries(&input, offset, &grid, &self.catalog, &self.config);
        let (merged, merge_state) = match &self.merge_state {
            Some(state) => merge_delta(
                &self.summaries,
                state,
                &new_shard,
                &grid,
                &self.catalog,
                &self.config,
            )?,
            None => {
                let mut refs: Vec<&Summaries> = self.shards.iter().map(|s| &s.summaries).collect();
                refs.push(&new_shard);
                merge_shards_stateful(&refs, &grid, &self.catalog, &self.config)?
            }
        };
        let Some(tree) = self.tree.as_mut() else {
            return Err(Error::ServingOnly(
                "database has no data tree to append to".into(),
            ));
        };
        // Commit — nothing below can fail.
        let new_total = offset as u64 + input.node_count as u64;
        tree.append_document_subtree(&doc_tree);
        self.index
            .append_document(&self.catalog, &input, offset, new_total);
        self.maintenance
            .tracker
            .ingest_document(&grid, &self.catalog, &input, offset);
        self.maintenance.counters.stable_appends += 1;
        let old_generation = self.summaries.generation();
        // The outgoing serving state is exactly what a removal of this
        // document must restore: move it onto the undo stack.
        let undo = AppendUndo {
            shards_before: self.shards.len(),
            entry_count: self.summaries.len(),
            summaries: std::mem::replace(&mut self.summaries, Arc::new(merged)),
            merge_state: self.merge_state.replace(merge_state),
        };
        self.undo.push_back(undo);
        if self.undo.len() > UNDO_DEPTH {
            self.undo.pop_front();
        }
        self.shards.push(DocShard {
            name,
            offset,
            summaries: new_shard,
            source: Some(ShardSource {
                tree: doc_tree,
                input,
            }),
        });
        self.epoch += 1;
        // Coefficient tables are pure functions of (predicate position
        // histogram, grid); the grid did not move, and any predicate the
        // new shard contributed zero mass to has a bit-identical merged
        // histogram — its tables carry to the new generation unchanged.
        let added = &self
            .shards
            .last()
            .expect("shard pushed above") // xlint: allow(no-panic, "the new shard was pushed immediately above")
            .summaries;
        self.coeff_cache
            .rebind_carrying(old_generation, &self.summaries, |name| {
                added.get(name).is_none_or(|p| p.count == 0)
            });
        self.publish_snapshot();
        Ok(())
    }

    /// Whether the element index can extend/shrink incrementally: every
    /// catalog predicate is a `Tag` (always true for collections built
    /// by [`Database::load_documents`], whose catalogs are tag-derived).
    fn index_appendable(&self) -> bool {
        self.catalog
            .iter()
            .all(|e| matches!(e.predicate, BasePredicate::Tag(_)))
    }

    /// Installs a rebuilt database while advancing the epoch and keeping
    /// the prepared-query cache and the maintenance counters: entries
    /// (and their memoized plans) were derived under the old epoch, so
    /// the first access per entry re-prepares it against the new
    /// summaries — stale state is unreachable, warm state re-warms
    /// without re-parsing.
    fn replace_rebuilt(&mut self, rebuilt: Database) {
        let epoch = self.epoch + 1;
        let prepared = std::mem::take(&mut self.prepared);
        let counters = self.maintenance.counters;
        // The serving cell's identity must survive the rebuild: external
        // holders (maintenance worker, admission front) keep their
        // `Arc<SnapshotCell>` across it and see the new state at the
        // next publish. The recorder and metric handles survive for the
        // same reason — telemetry history (counters, stage histograms,
        // the event journal) spans rebuilds, and the carried prepared
        // cache's counters are registered in the carried recorder.
        let serving = self.serving.clone();
        let obs = self.obs.clone();
        let metrics = self.metrics.clone();
        *self = rebuilt;
        self.epoch = epoch;
        self.prepared = prepared;
        self.maintenance.counters = counters;
        self.serving = serving;
        self.obs = obs;
        self.metrics = metrics;
        self.publish_snapshot();
    }

    /// Removes a document by name. Under the slack policy the grid never
    /// moves: removing the **newest** document truncates the mega-tree,
    /// index and shard list in place (O(removed document), zero
    /// re-bucketing); an interior removal compacts the remaining
    /// documents' positions and rebuilds their shards **on the pinned
    /// grid** (drift accounting carries forward — the grid was not
    /// re-derived). Under the static policy the grid re-derives as
    /// before. No path re-parses or re-classifies anything; the catalog
    /// keeps its predicate definitions, and tags now matching nothing
    /// summarize as empty.
    pub fn remove_document(&mut self, name: &str) -> Result<()> {
        self.require_collection()?;
        let Some(pos) = self.shards.iter().position(|s| s.name == name) else {
            return Err(Error::NoData(format!("no document named {name:?}")));
        };

        // Stable removal: the newest document sits at the tail of every
        // structure and peels off without touching the rest.
        if self.config.policy.is_slack() && pos == self.shards.len() - 1 && self.index_appendable()
        {
            return self.remove_newest_within_slack();
        }

        let pinned = self
            .config
            .policy
            .is_slack()
            .then(|| self.summaries.grid().clone());
        let continuity = pinned.is_some().then(|| {
            (
                self.maintenance.tracker.baseline(),
                self.maintenance.tracker.mutations(),
            )
        });
        let (mut sources, mut derived) = self.dismantle_shards()?;
        let removed_source = sources.remove(pos);
        let removed_derived = derived.remove(pos);
        match Database::from_collection(self.catalog.clone(), self.config.clone(), sources, pinned)
        {
            Ok(rebuilt) => {
                self.replace_rebuilt(rebuilt);
                match continuity {
                    // Pinned grid: the boundaries did not move, so the
                    // baseline recorded at the last derivation (and the
                    // mutation count) stay in force.
                    Some((baseline, mutations)) => {
                        self.maintenance
                            .tracker
                            .restore_continuity(baseline, mutations);
                        self.maintenance.counters.pinned_rebuilds += 1;
                        self.auto_refresh_if_needed();
                    }
                    None => {
                        self.maintenance.counters.grid_moves += 1;
                    }
                }
                Ok(())
            }
            Err((e, mut sources)) => {
                // Atomic failure: put the document back in its original
                // position and restore the previous serving state.
                sources.insert(pos, removed_source);
                derived.insert(pos, removed_derived);
                self.restore_shards(sources, derived);
                Err(e)
            }
        }
    }

    /// The stable-removal commit for the newest document: re-merge the
    /// remaining (reused) shard summaries, truncate the mega-tree and
    /// index tails, retract the document from the drift tracker.
    fn remove_newest_within_slack(&mut self) -> Result<()> {
        // Fail before the first mutation: drift retraction needs the
        // shard's stored classified lists, and truncation needs the tree.
        let last = self.shards.last().expect("non-empty checked"); // xlint: allow(no-panic, "caller rejects empty shard lists before calling")
        if last.source.is_none() {
            return Err(Error::ServingOnly(format!(
                "document {:?} has no stored source; its drift contribution cannot be retracted",
                last.name
            )));
        }
        let grid = self.summaries.grid().clone();
        // O(1) undo: the top of the undo stack is the exact serving
        // state from before this document's append — valid while the
        // shard prefix and the catalog entry set are unchanged. Only
        // when no snapshot applies does the removal pay the full
        // re-merge of the surviving shards.
        let undo_valid = self.undo.back().is_some_and(|u| {
            u.shards_before + 1 == self.shards.len() && u.entry_count == self.summaries.len()
        });
        if !undo_valid {
            self.undo.clear();
        }
        let remerged = if undo_valid {
            None
        } else {
            let refs: Vec<&Summaries> = self.shards[..self.shards.len() - 1]
                .iter()
                .map(|s| &s.summaries)
                .collect();
            Some(merge_shards_stateful(
                &refs,
                &grid,
                &self.catalog,
                &self.config,
            )?)
        };
        let offset = self.shards.last().expect("non-empty checked").offset; // xlint: allow(no-panic, "caller rejects empty shard lists before calling")
        let Some(tree) = self.tree.as_mut() else {
            return Err(Error::ServingOnly(
                "database has no data tree to truncate".into(),
            ));
        };
        tree.truncate_last_subtree(NodeId(offset))?;
        // Commit — nothing below can fail.
        let shard = self.shards.pop().expect("non-empty checked"); // xlint: allow(no-panic, "caller rejects empty shard lists before calling")
        let src = shard.source.expect("source checked above"); // xlint: allow(no-panic, "source presence verified before the commit point above")
        self.index.truncate_document(offset, offset as u64);
        self.maintenance
            .tracker
            .retract_document(&grid, &self.catalog, &src.input, offset);
        self.maintenance.counters.stable_removes += 1;
        let old_generation = self.summaries.generation();
        if let Some((merged, merge_state)) = remerged {
            self.summaries = Arc::new(merged);
            self.merge_state = Some(merge_state);
        } else {
            let u = self.undo.pop_back().expect("undo_valid checked a snapshot"); // xlint: allow(no-panic, "remerged is None only when undo_valid saw a stack top; nothing above pops it")
            self.summaries = u.summaries;
            self.merge_state = u.merge_state;
        }
        self.epoch += 1;
        // Mirror of the append carry: predicates the removed shard never
        // contributed mass to keep bit-identical merged histograms on
        // the pinned grid, so their tables follow to the new generation.
        self.coeff_cache
            .rebind_carrying(old_generation, &self.summaries, |name| {
                shard.summaries.get(name).is_none_or(|p| p.count == 0)
            });
        self.publish_snapshot();
        self.auto_refresh_if_needed();
        Ok(())
    }

    /// Re-derives the grid from the stored classified interval lists —
    /// equi-depth boundaries when the config says so, slack padding per
    /// the policy — rebuilds every shard summary in parallel on it, and
    /// atomically swaps the serving view in. **Zero tree traversal, no
    /// re-parsing, no re-classification.** The epoch bumps, so every
    /// cached prepared query (and memoized plan) re-prepares lazily; the
    /// grid derivation is deterministic, so the refreshed database
    /// estimates bit-identically to one built cold on the same
    /// collection.
    ///
    /// Fires automatically when drift crosses the policy threshold
    /// (under [`xmlest_core::GridPolicy::Slack`] with `auto_refresh`);
    /// this is the manual entry point.
    pub fn refresh_grid(&mut self) -> Result<()> {
        self.require_collection()?;
        let drift = self.maintenance.tracker.drift();
        self.refresh_inner(false, drift)
    }

    /// Fires a refresh when the policy says drift warrants one; called
    /// at the end of every successful mutation.
    ///
    /// Never fails: by the time this runs the hosting mutation has
    /// committed, so returning its error would break the mutation's
    /// atomic-failure contract (a caller retrying the "failed" add
    /// would insert the document twice). A refresh that cannot rebuild
    /// rolls itself back (the database keeps serving consistently on
    /// the old grid, drift stays high) and is surfaced through the
    /// `failed_auto_refreshes` counter; the next mutation — or a manual
    /// [`Database::refresh_grid`], which does report errors — retries.
    ///
    /// Retries are **bounded**: consecutive failures open an exponential
    /// backoff window (`2^min(strikes−1, 6)` mutations), so a persistent
    /// rebuild problem does not charge every mutation an O(collection)
    /// doomed attempt. After [`DEGRADED_AFTER_STRIKES`] consecutive
    /// failures the visible [`MaintenanceStats::refresh_degraded`] flag
    /// raises; any successful refresh (auto or manual) clears the
    /// strikes, the window and the flag.
    fn auto_refresh_if_needed(&mut self) {
        if !self.config.policy.auto_refresh() {
            return;
        }
        let Some(threshold) = self.config.policy.drift_threshold() else {
            return;
        };
        self.maintenance.counters.mutation_clock += 1;
        let drift = self.maintenance.tracker.drift();
        if drift <= threshold {
            return;
        }
        if self.maintenance.counters.mutation_clock
            < self.maintenance.counters.refresh_backoff_until
        {
            self.maintenance.counters.backoff_skips += 1;
            self.obs.event(
                EventKind::BackoffSkip,
                self.epoch,
                self.maintenance.counters.mutation_clock,
                self.maintenance.counters.refresh_backoff_until,
            );
            return;
        }
        if self.refresh_inner(true, drift).is_err() {
            let c = &mut self.maintenance.counters;
            c.failed_auto_refreshes += 1;
            c.refresh_strikes += 1;
            c.refresh_backoff_until =
                c.mutation_clock + (1u64 << (c.refresh_strikes - 1).min(MAX_BACKOFF_SHIFT));
            let entered_degraded =
                !c.refresh_degraded && c.refresh_strikes >= DEGRADED_AFTER_STRIKES;
            if c.refresh_strikes >= DEGRADED_AFTER_STRIKES {
                c.refresh_degraded = true;
            }
            let strikes = c.refresh_strikes as u64;
            let window = c.refresh_backoff_until - c.mutation_clock;
            self.obs
                .event(EventKind::RefreshStrike, self.epoch, strikes, window);
            if entered_degraded {
                self.obs
                    .event(EventKind::DegradedEnter, self.epoch, strikes, 0);
            }
        }
    }

    /// [`Database::refresh_grid`] forced down the full-rebuild path,
    /// bypassing the predicate-scoped splice ([`xmlest_core::refresh`])
    /// — the baseline the scoped path is benchmarked and
    /// property-tested against (the two must produce bit-identical
    /// summaries).
    #[doc(hidden)]
    pub fn refresh_grid_full(&mut self) -> Result<()> {
        self.require_collection()?;
        let drift = self.maintenance.tracker.drift();
        self.refresh_full_inner(false, drift)
    }

    fn refresh_inner(&mut self, auto: bool, drift_at: f64) -> Result<()> {
        // Clone the handle so the span doesn't hold a borrow of `self`
        // across the mutating refresh below.
        let obs = self.obs.clone();
        let span = obs.span(Stage::Refresh);
        // Predicate-scoped path first: when the re-derived grid keeps
        // its bucket count, only the predicates whose rows actually
        // moved rebuild; everything else — including the mega-tree, the
        // element index and the memoized coefficient tables of spliced
        // predicates — carries over verbatim. Any precondition miss or
        // splice error falls back to the full rebuild below.
        let res = if self.try_scoped_refresh(auto, drift_at) {
            Ok(())
        } else {
            self.refresh_full_inner(auto, drift_at)
        };
        drop(span);
        res
    }

    /// Attempts the splice-based refresh; `true` means it committed
    /// (summaries, shards, fold state, tracker and counters are all
    /// updated). `false` leaves the database untouched.
    fn try_scoped_refresh(&mut self, auto: bool, drift_at: f64) -> bool {
        if self.merge_state.is_none()
            || self.shards.is_empty()
            || !self.quarantine.is_empty()
            || self.shards.iter().any(|s| s.source.is_none())
        {
            return false;
        }
        // An armed rebuild fault must fail the refresh, not be skipped
        // around: decline (without consuming) so the full path's
        // `from_collection` consumes it and reports the failure.
        #[cfg(test)]
        if test_faults::FAIL_REBUILDS.load(std::sync::atomic::Ordering::SeqCst) > 0 {
            return false;
        }
        let computed = {
            let state = self.merge_state.as_ref().expect("checked above"); // xlint: allow(no-panic, "is_none() returned false two statements up")
            let inputs: Vec<(&DocumentSummaryInput, u32)> = self
                .shards
                .iter()
                .map(|s| {
                    let src = s.source.as_ref().expect("sources checked above"); // xlint: allow(no-panic, "the any(is_none) guard above returned false")
                    (&src.input, s.offset)
                })
                .collect();
            let Ok(new_grid) = make_collection_grid(&inputs, &self.catalog, &self.config) else {
                return false;
            };
            // The splice argument needs equal bucket counts; a g change
            // re-buckets everything anyway, so the full path is right.
            if new_grid.g() != self.summaries.grid().g() {
                return false;
            }
            let old_shards: Vec<&Summaries> = self.shards.iter().map(|s| &s.summaries).collect();
            let Ok(scoped) = refresh_scoped(
                &inputs,
                &old_shards,
                &self.summaries,
                state,
                &new_grid,
                &self.catalog,
                &self.config,
            ) else {
                return false;
            };
            // Same tracker a cold rebuild derives: baselines re-anchor
            // to the new grid's occupancy.
            let tracker = DriftTracker::from_inputs(&new_grid, &self.catalog, &inputs);
            // Memoized coefficient tables of spliced predicates stay
            // valid (their inner histograms are bit-identical); carry
            // them across the rebind instead of recomputing on first
            // use.
            let carried: Vec<_> = self
                .coeff_cache
                .entries()
                .into_iter()
                .filter(|(name, _, _)| scoped.spliced.iter().any(|n| n == name))
                .collect();
            (scoped, tracker, carried)
        };
        let (scoped, tracker, carried) = computed;

        // Install. Offsets, mega-tree and element index are untouched —
        // the document layout did not change, only bucket boundaries.
        for (shard, summaries) in self.shards.iter_mut().zip(scoped.shards) {
            shard.summaries = summaries;
        }
        self.summaries = Arc::new(scoped.merged);
        self.merge_state = Some(scoped.state);
        // The undo snapshots were captured on the old grid.
        self.undo.clear();
        self.maintenance.tracker = tracker;
        self.epoch += 1;
        let new_grid = self.summaries.grid().clone();
        for (name, _, table) in carried {
            self.coeff_cache.seed(
                &self.summaries,
                &name,
                Arc::new(table.rebound_to(new_grid.clone())),
            );
        }
        xmlest_core::invariants::checkpoint("Database::refresh_grid(scoped)", || {
            self.summaries.validate()
        });
        self.publish_snapshot();
        let c = &mut self.maintenance.counters;
        c.refreshes += 1;
        c.grid_moves += 1;
        c.scoped_refreshes += 1;
        c.spliced_entries += scoped.spliced.len() as u64;
        c.rebuilt_entries += scoped.rebuilt_entries as u64;
        if auto {
            c.auto_refreshes += 1;
        }
        c.last_refresh_drift = drift_at;
        c.refresh_strikes = 0;
        c.refresh_backoff_until = 0;
        let was_degraded = std::mem::take(&mut c.refresh_degraded);
        self.obs.event(
            EventKind::Refresh,
            self.epoch,
            1,
            (drift_at * 1e6).max(0.0) as u64,
        );
        if was_degraded {
            self.obs.event(EventKind::DegradedExit, self.epoch, 0, 0);
        }
        true
    }

    fn refresh_full_inner(&mut self, auto: bool, drift_at: f64) -> Result<()> {
        let (sources, derived) = self.dismantle_shards()?;
        match Database::from_collection(self.catalog.clone(), self.config.clone(), sources, None) {
            Ok(rebuilt) => {
                self.replace_rebuilt(rebuilt);
                xmlest_core::invariants::checkpoint("Database::refresh_grid", || {
                    self.summaries.validate()
                });
                let c = &mut self.maintenance.counters;
                c.refreshes += 1;
                c.grid_moves += 1;
                if auto {
                    c.auto_refreshes += 1;
                }
                c.last_refresh_drift = drift_at;
                // A successful refresh ends any losing streak.
                c.refresh_strikes = 0;
                c.refresh_backoff_until = 0;
                let was_degraded = std::mem::take(&mut c.refresh_degraded);
                self.obs.event(
                    EventKind::Refresh,
                    self.epoch,
                    0,
                    (drift_at * 1e6).max(0.0) as u64,
                );
                if was_degraded {
                    self.obs.event(EventKind::DegradedExit, self.epoch, 0, 0);
                }
                Ok(())
            }
            Err((e, sources)) => {
                self.restore_shards(sources, derived);
                Err(e)
            }
        }
    }

    /// Snapshot of the grid maintenance layer: policy, capacity and
    /// occupancy, drift against the threshold, and per-path counters.
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        let c = self.maintenance.counters;
        let t = &self.maintenance.tracker;
        MaintenanceStats {
            policy: self.config.policy,
            grid_capacity: self.summaries.grid().max_pos() as u64 + 1,
            occupied: self.summaries.tree_nodes(),
            skew: t.skew(),
            baseline_skew: t.baseline(),
            drift: t.drift(),
            drift_threshold: self.config.policy.drift_threshold(),
            mutations_since_derive: t.mutations(),
            stable_appends: c.stable_appends,
            stable_removes: c.stable_removes,
            grid_moves: c.grid_moves,
            pinned_rebuilds: c.pinned_rebuilds,
            overflow_appends: c.overflow_appends,
            refreshes: c.refreshes,
            scoped_refreshes: c.scoped_refreshes,
            spliced_entries: c.spliced_entries,
            rebuilt_entries: c.rebuilt_entries,
            auto_refreshes: c.auto_refreshes,
            failed_auto_refreshes: c.failed_auto_refreshes,
            last_refresh_drift: c.last_refresh_drift,
            refresh_strikes: c.refresh_strikes,
            backoff_skips: c.backoff_skips,
            refresh_degraded: c.refresh_degraded,
        }
    }

    /// Per-predicate `(name, occupancy skew, match count)` in name
    /// order — which predicates outgrew the grid.
    pub fn predicate_skews(&self) -> Vec<(String, f64, u64)> {
        self.maintenance.tracker.entry_skews()
    }

    fn require_collection(&self) -> Result<()> {
        if !self.collection {
            return Err(if self.has_data() {
                Error::NoData("not a document collection (built with load_str/new)".into())
            } else {
                // Catalog-opened: summaries serve, but there are no
                // document trees to rebuild from.
                Error::ServingOnly(
                    "catalog-opened database serves estimates only; \
                     mutations and refreshes need document sources"
                        .into(),
                )
            });
        }
        Ok(())
    }

    // ---- persistence -------------------------------------------------

    /// Serializes everything derived — config, predicate catalog, the
    /// merged summaries, every per-document shard, and the memoized
    /// coefficient tables — into a versioned, checksummed catalog blob.
    /// [`Database::open_catalog`] restores a serving-ready database from
    /// it with zero tree traversal and byte-identical estimates.
    ///
    /// The optional DTD analysis is **not** persisted (it is derivable
    /// from the schema). A database built with a DTD config therefore
    /// reopens without its schema shortcuts until the same analysis is
    /// re-attached with [`Database::attach_dtd`] — only then are its
    /// estimates byte-identical again.
    pub fn save_catalog(&self) -> Vec<u8> {
        let mut config = self.config.clone();
        config.dtd = None;
        CatalogFile {
            config,
            catalog: self.catalog.clone(),
            merged: (*self.summaries).clone(),
            shards: self
                .shards
                .iter()
                .map(|s| CatalogShard {
                    name: s.name.clone(),
                    offset: s.offset,
                    summaries: s.summaries.clone(),
                })
                .collect(),
            coefficients: self
                .coeff_cache
                .entries()
                .into_iter()
                .map(|(name, _basis, table)| (name, (*table).clone()))
                .collect(),
            policy: self.config.policy,
            drift: Some(self.maintenance.tracker.clone()),
        }
        .to_bytes()
    }

    /// Opens a database from catalog bytes: summaries, shards and
    /// coefficient tables deserialize directly — **zero tree
    /// traversal**, no parsing of any document. The result serves
    /// estimates (including batched service estimation) byte-identically
    /// to the database that was saved — for DTD-configured builds only
    /// after [`Database::attach_dtd`] restores the (never-persisted)
    /// analysis. Exact counting, candidate lists and plan execution
    /// need the data tree and return [`Error::NoData`].
    pub fn open_catalog(bytes: &[u8]) -> Result<Database> {
        let file = CatalogFile::from_bytes(bytes)?;
        Ok(Database::from_catalog_file(file, Vec::new()))
    }

    /// Opens catalog bytes **leniently**: localized corruption (a torn
    /// shard section, damaged coefficient tables, a bad drift section)
    /// quarantines just the affected parts while every intact document
    /// keeps serving. The returned [`OpenReport`] lists what was
    /// quarantined or dropped; [`Database::repair`] rebuilds quarantined
    /// documents from re-supplied sources. Clean bytes yield a clean
    /// report and the exact [`Database::open_catalog`] result.
    ///
    /// Fatal damage — a corrupt header, metadata section, or a corrupt
    /// merged view with no shards to rebuild it from — still errors:
    /// there is nothing trustworthy to serve.
    pub fn open_catalog_degraded(bytes: &[u8]) -> Result<(Database, OpenReport)> {
        let (file, report) = CatalogFile::open_lenient(bytes)?;
        let db = Database::from_catalog_file(file, report.quarantined.clone());
        Ok((db, report))
    }

    /// The shared serving-only constructor behind the catalog opens.
    fn from_catalog_file(file: CatalogFile, quarantine: Vec<QuarantinedShard>) -> Database {
        let maintenance = match file.drift {
            Some(tracker) => MaintenanceState::with_tracker(tracker),
            None => MaintenanceState::new(file.merged.grid().g()),
        };
        let summaries = Arc::new(file.merged);
        let coeff_cache = Arc::new(CoeffCache::new());
        let obs = Recorder::new();
        let metrics = Metrics::register(&obs);
        let serving = initial_serving(
            !quarantine.is_empty(),
            &summaries,
            &coeff_cache,
            &obs,
            &metrics,
        );
        let db = Database {
            tree: None,
            catalog: file.catalog,
            config: file.config,
            summaries,
            shards: file
                .shards
                .into_iter()
                .map(|s| DocShard {
                    name: s.name,
                    offset: s.offset,
                    summaries: s.summaries,
                    source: None,
                })
                .collect(),
            collection: false,
            index: ElementIndex::default(),
            coeff_cache,
            epoch: 1,
            prepared: PreparedCache::with_recorder(crate::prepared::PREPARED_CACHE_CAP, &obs),
            maintenance,
            quarantine,
            merge_state: None,
            undo: VecDeque::new(),
            serving,
            obs,
            metrics,
        };
        for (ordinal, _) in db.quarantine.iter().enumerate() {
            db.obs
                .event(EventKind::ShardQuarantine, db.epoch, ordinal as u64, 0);
        }
        for (name, table) in file.coefficients {
            db.coeff_cache.seed(&db.summaries, &name, Arc::new(table));
        }
        db
    }

    /// Saves this database's catalog into a generation-managed
    /// [`CatalogStore`] (atomic publish: temp file, fsync, rename,
    /// directory fsync). Returns the committed generation number.
    pub fn save_to_store(&self, store: &CatalogStore<'_>) -> Result<u64> {
        Ok(store.save(&self.save_catalog())?)
    }

    /// Opens the newest usable generation from a [`CatalogStore`].
    ///
    /// Recovery ladder, strictest first:
    /// 1. the newest generation that passes a **strict** open (every
    ///    checksum verified) — the normal case after any crash, since
    ///    the store publishes generations atomically;
    /// 2. failing that, the newest generation that opens **degraded**
    ///    (quarantining damaged shard sections);
    /// 3. failing everything, the strict error from the newest
    ///    generation.
    ///
    /// The [`StoreOpen`] report says which generation was used, what (if
    /// anything) was quarantined, and which newer generations were
    /// skipped as unreadable.
    pub fn open_store(store: &CatalogStore<'_>) -> Result<(Database, StoreOpen)> {
        match store.load_latest_valid(CatalogFile::from_bytes) {
            Ok(Some((generation, file, skipped))) => {
                let db = Database::from_catalog_file(file, Vec::new());
                Ok((
                    db,
                    StoreOpen {
                        generation,
                        report: OpenReport::default(),
                        skipped,
                    },
                ))
            }
            Ok(None) => Err(Error::NoData("store has no catalog generations".into())),
            Err(strict_err) => {
                // No generation opens strictly: fall back to the newest
                // one that opens degraded.
                let mut generations = store.generations()?;
                generations.reverse();
                let mut skipped = Vec::new();
                for generation in generations {
                    let bytes = match store.read_generation(generation) {
                        Ok(b) => b,
                        Err(e) => {
                            skipped.push(SkippedGeneration {
                                generation,
                                reason: e.to_string(),
                            });
                            continue;
                        }
                    };
                    match Database::open_catalog_degraded(&bytes) {
                        Ok((db, report)) => {
                            return Ok((
                                db,
                                StoreOpen {
                                    generation,
                                    report,
                                    skipped,
                                },
                            ))
                        }
                        Err(e) => skipped.push(SkippedGeneration {
                            generation,
                            reason: e.to_string(),
                        }),
                    }
                }
                Err(Error::Core(strict_err))
            }
        }
    }

    /// Rebuilds quarantined documents' shard summaries from re-supplied
    /// sources, restoring estimates a degraded open lost. Each source is
    /// parsed, classified against the current catalog, and must produce
    /// exactly the node count the metadata directory recorded for its
    /// position — the re-merged view must keep every surviving shard's
    /// offsets intact. Accepted documents leave quarantine and the
    /// merged view re-derives (epoch bump: prepared queries re-prepare);
    /// rejected ones stay quarantined with the rejection reason.
    ///
    /// The database remains serving-only: repaired shards carry
    /// summaries but no mutation sources — re-ingest the collection with
    /// [`Database::load_documents`] for a mutable database.
    pub fn repair<'a>(
        &mut self,
        sources: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<RepairReport> {
        let mut report = RepairReport::default();
        let mut changed = false;
        for (name, xml) in sources {
            let Some(q_idx) = self.quarantine.iter().position(|q| q.name == name) else {
                report
                    .rejected
                    .push((name.to_owned(), "document is not quarantined".into()));
                continue;
            };
            let entry = &self.quarantine[q_idx];
            let doc_tree = match parse_str(xml) {
                Ok(t) => t,
                Err(e) => {
                    let reason = format!("parse failed: {e}");
                    report.rejected.push((name.to_owned(), reason.clone()));
                    self.quarantine[q_idx].reason = reason;
                    continue;
                }
            };
            let input = classify_document(&doc_tree, &self.catalog);
            if input.node_count != entry.node_count {
                let reason = format!(
                    "node count mismatch: catalog recorded {}, supplied document has {}",
                    entry.node_count, input.node_count
                );
                report.rejected.push((name.to_owned(), reason.clone()));
                self.quarantine[q_idx].reason = reason;
                continue;
            }
            let offset = entry.offset;
            let shard = build_shard_summaries(
                &input,
                offset,
                self.summaries.grid(),
                &self.catalog,
                &self.config,
            );
            let at = self
                .shards
                .iter()
                .position(|s| s.offset > offset)
                .unwrap_or(self.shards.len());
            self.shards.insert(
                at,
                DocShard {
                    name: name.to_owned(),
                    offset,
                    summaries: shard,
                    source: None,
                },
            );
            self.quarantine.remove(q_idx);
            report.repaired.push(name.to_owned());
            changed = true;
        }
        if changed {
            // Re-merge on the same grid, preserving the saved total so
            // still-quarantined holes keep their position space.
            let grid = self.summaries.grid().clone();
            let refs: Vec<&Summaries> = self.shards.iter().map(|s| &s.summaries).collect();
            self.summaries = Arc::new(xmlest_core::shard::merge_shards_with_total(
                &refs,
                &grid,
                &self.catalog,
                &self.config,
                self.summaries.tree_nodes(),
            )?);
            // The override total makes this merge's fold state unusable
            // for a delta resume (the root interval is pinned, not
            // derived); the next stable append re-merges fully once.
            self.merge_state = None;
            self.undo.clear();
            self.coeff_cache = Arc::new(CoeffCache::new());
            self.epoch += 1;
            self.publish_snapshot();
        }
        Ok(report)
    }

    /// Documents quarantined by a degraded open, still awaiting
    /// [`Database::repair`].
    pub fn quarantined(&self) -> &[QuarantinedShard] {
        &self.quarantine
    }

    /// Whether this database is serving with quarantined documents.
    pub fn is_degraded(&self) -> bool {
        !self.quarantine.is_empty()
    }

    // ---- accessors ---------------------------------------------------

    /// The data tree. Panics for catalog-opened databases — use
    /// [`Database::try_tree`] when the database may be serving-only.
    pub fn tree(&self) -> &XmlTree {
        self.try_tree()
            .expect("catalog-opened database has no data tree (serving-only)") // xlint: allow(no-panic, "documented panicking accessor; try_tree is the fallible form")
    }

    /// The data tree, if this database has one.
    pub fn try_tree(&self) -> Option<&XmlTree> {
        self.tree.as_ref()
    }

    /// Whether the database carries the data tree (false after
    /// [`Database::open_catalog`]).
    pub fn has_data(&self) -> bool {
        self.tree.is_some()
    }

    /// The predicate catalog the summaries were built against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The build configuration (DTD analysis included only for databases
    /// built in-process or re-attached after a catalog open).
    pub fn config(&self) -> &SummaryConfig {
        &self.config
    }

    /// Re-attaches a DTD analysis to the merged view and every shard —
    /// the one derived structure the catalog format does not persist.
    /// Schema shortcuts resume immediately; attaching the same analysis
    /// the summaries were built with restores a DTD-configured
    /// database's estimates exactly (overlap properties were baked in
    /// at build time and round-trip on their own).
    pub fn attach_dtd(&mut self, dtd: xmlest_xml::dtd::DtdAnalysis) {
        self.config.dtd = Some(dtd.clone());
        // Copy-on-write: a live snapshot holding the old merged view is
        // never mutated under a concurrent reader. The clone keeps the
        // build id, so the coefficient binding is unchanged (matching
        // the pre-snapshot behavior of not resetting the cache).
        Arc::make_mut(&mut self.summaries).attach_dtd(dtd.clone());
        for shard in &mut self.shards {
            shard.summaries.attach_dtd(dtd.clone());
        }
        // Schema shortcuts change estimates (and therefore plan costs)
        // in place: invalidate prepared state. The in-place overlap
        // rewrite also invalidates the carried merge-fold state (its
        // coverage accumulators were folded under the old flags), so the
        // next stable append re-merges fully once.
        self.merge_state = None;
        self.undo.clear();
        self.epoch += 1;
        self.publish_snapshot();
    }

    /// The merged summary structure serving estimates.
    pub fn summaries(&self) -> &Summaries {
        &self.summaries
    }

    /// Document names in collection order (empty for single-document
    /// databases).
    pub fn document_names(&self) -> Vec<&str> {
        self.shards.iter().map(|s| s.name.as_str()).collect()
    }

    /// A document's own summary shard (same grid as the merged view), if
    /// this database is a collection and the document exists.
    pub fn shard_summaries(&self, name: &str) -> Option<&Summaries> {
        self.shards
            .iter()
            .find(|s| s.name == name)
            .map(|s| &s.summaries)
    }

    /// An estimator over the summaries, wired to the coefficient cache.
    pub fn estimator(&self) -> Estimator<'_> {
        self.summaries.estimator().with_cache(&self.coeff_cache)
    }

    /// The shared coefficient cache (introspection / tests).
    pub fn coeff_cache(&self) -> &CoeffCache {
        &self.coeff_cache
    }

    // ---- wait-free serving -------------------------------------------

    /// Publishes the current serving state as a fresh epoch-stamped
    /// [`Snapshot`]. Called at every mutation commit point (after the
    /// epoch bump); under `--features strict-invariants` the publish
    /// re-validates the summaries and epoch monotonicity.
    fn publish_snapshot(&self) {
        let twigs = self.prepared.frozen_twigs();
        let degraded = self.is_degraded();
        self.obs.event(
            EventKind::SnapshotPublish,
            self.epoch,
            twigs.len() as u64,
            degraded as u64,
        );
        if self.obs.enabled() {
            self.metrics.publishes.inc();
        }
        self.serving.publish(Snapshot::new(
            self.epoch,
            degraded,
            self.summaries.clone(),
            self.coeff_cache.clone(),
            twigs,
            self.obs.clone(),
            self.metrics.clone(),
        ));
    }

    /// The shared serving cell. Readers (service fronts, other threads)
    /// hold this `Arc` and load wait-free snapshots from it; the cell's
    /// identity is stable across every mutation, refresh and rebuild of
    /// this database.
    pub fn serving(&self) -> Arc<SnapshotCell> {
        self.serving.clone()
    }

    /// The current serving snapshot — one lock-free pointer load.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.serving.current()
    }

    /// Number of distinct query strings in the prepared-query cache.
    pub fn cached_twig_count(&self) -> usize {
        self.prepared.len()
    }

    /// The current epoch: a monotonic version of everything estimates
    /// derive from, bumped by collection mutations and
    /// [`Database::attach_dtd`]. Prepared queries and memoized plans
    /// carry the epoch they were derived under and are re-prepared on
    /// mismatch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Counter snapshot of the prepared-query cache.
    pub fn prepared_stats(&self) -> crate::prepared::CacheStats {
        self.prepared.stats()
    }

    // ---- observability -----------------------------------------------

    /// The database's observability recorder: the typed metric
    /// registry, stage histograms and event journal every layer of this
    /// database records into. Shared by handle with published
    /// snapshots, services and fronts; use it to toggle recording
    /// ([`Recorder::set_enabled`]) or take a raw [`xmlest_xobs`]
    /// snapshot.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Engine counter handles (crate-internal; services and fronts
    /// increment through the snapshots they hold).
    pub(crate) fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// One coherent observability snapshot: epoch, degradation and
    /// quarantine state, the four legacy stats views
    /// ([`Database::prepared_stats`], [`Database::maintenance_stats`],
    /// front and service stats), every registered counter, per-stage
    /// latency quantiles, and the recent event journal. See
    /// [`Telemetry`] for the reset contract and the exporters.
    pub fn telemetry(&self) -> Telemetry {
        Telemetry::gather(
            &self.obs,
            &self.metrics,
            self.epoch,
            self.is_degraded(),
            self.quarantine.len(),
            0,
            self.prepared.stats(),
            self.maintenance_stats(),
        )
    }

    /// The element index used by exact counting and plan execution.
    pub fn index(&self) -> &ElementIndex {
        &self.index
    }

    // ---- prepared queries --------------------------------------------

    /// Resolves a query string to its prepared form: parse →
    /// canonicalize → intern → resolve leaves, cached across calls. A
    /// warm hit (same or equivalent spelling, same epoch) is a map probe
    /// and an `Arc` clone — no parsing, no allocation.
    pub fn prepare(&self, path: &str) -> Result<Arc<PreparedQuery>> {
        self.prepared.get_or_prepare_path(
            path,
            self.epoch,
            || Ok(parse_path(path)?.canonicalize()),
            &|id, twig| self.resolve_prepared(id, twig),
        )
    }

    /// [`Database::prepare`] with the parse/canonicalize work supplied
    /// by the caller (only invoked on a cache miss) — the traced
    /// pipeline times those stages itself and must not pay them twice.
    pub(crate) fn prepare_path_with(
        &self,
        path: &str,
        parse_canonical: impl FnOnce() -> Result<TwigNode>,
    ) -> Result<Arc<PreparedQuery>> {
        self.prepared
            .get_or_prepare_path(path, self.epoch, parse_canonical, &|id, twig| {
                self.resolve_prepared(id, twig)
            })
    }

    /// Side-effect-free probe: how `path` would meet the prepared cache
    /// right now (no counters move, nothing is installed).
    pub(crate) fn classify_path(&self, path: &str) -> crate::prepared::CacheTier {
        self.prepared.classify_path(path, self.epoch)
    }

    /// [`Database::prepare`] for a pre-built pattern. Canonicalizes, so
    /// equivalent patterns (and their string spellings) share one entry.
    pub fn prepare_twig(&self, twig: &TwigNode) -> Result<Arc<PreparedQuery>> {
        self.prepared
            .get_or_prepare_twig(twig, self.epoch, &|id, t| self.resolve_prepared(id, t))
    }

    /// An epoch-valid view of a prepared entry: the entry itself when
    /// current, otherwise the transparently re-prepared replacement
    /// (callers may hold entries across collection mutations; a stale
    /// one is never served). An entry issued by a *different* database
    /// is re-prepared here from its twig — its [`TwigId`] is meaningful
    /// only inside the cache that issued it, so trusting it would risk
    /// returning another query's state.
    pub fn refresh_prepared(&self, entry: &Arc<PreparedQuery>) -> Result<Arc<PreparedQuery>> {
        if !entry.issued_by(&self.prepared) {
            return self.prepare_twig(entry.twig());
        }
        if entry.epoch() == self.epoch {
            return Ok(entry.clone());
        }
        self.prepared
            .get_fresh_by_id(entry.id(), entry.twig(), self.epoch, &|id, t| {
                self.resolve_prepared(id, t)
            })
    }

    /// Builds one entry's prepared state: every pattern-node predicate
    /// resolved against the current summaries (validating names — a
    /// prepared query cannot fail estimation on an unknown predicate).
    fn resolve_prepared(&self, id: TwigId, twig: &Arc<TwigNode>) -> Result<PreparedQuery> {
        let est = self.estimator();
        let preds = twig.predicates();
        let mut leaves = Vec::with_capacity(preds.len());
        for pred in preds {
            leaves.push(LeafResolution {
                pred: pred.to_string(),
                count: est.node_total(pred)?,
            });
        }
        Ok(PreparedQuery::new(id, twig.clone(), self.epoch, leaves))
    }

    /// A planner over this database: prepared-query resolution plus
    /// epoch-memoized cheapest plans ([`crate::planner::Planner`]).
    pub fn planner(&self) -> crate::planner::Planner<'_> {
        crate::planner::Planner::new(self)
    }

    // ---- queries -----------------------------------------------------

    /// Candidate list for a pattern-node predicate. Named predicates
    /// **borrow** their index list (no clone — the satellite fix for the
    /// old `to_vec` here); other expressions are evaluated on the fly
    /// into an owned list.
    pub fn candidates(&self, pred: &PredExpr) -> Result<Cow<'_, [Item<NodeId>]>> {
        if let PredExpr::Named(name) = pred {
            return self
                .index
                .get(name)
                .map(Cow::Borrowed)
                .ok_or_else(|| match self.tree {
                    Some(_) => xmlest_query::Error::UnknownPredicate(name.clone()).into(),
                    None => Error::NoData("catalog-opened database has no element index".into()),
                });
        }
        let Some(tree) = self.tree.as_ref() else {
            return Err(Error::NoData(
                "catalog-opened database has no data tree".into(),
            ));
        };
        let mut out = Vec::new();
        for node in tree.iter() {
            match pred.eval(&self.catalog, tree, node) {
                Some(true) => out.push(Item::new(tree.interval(node), node)),
                Some(false) => {}
                None => {
                    let missing = pred
                        .referenced_names()
                        .into_iter()
                        .find(|n| !self.catalog.contains(n))
                        .unwrap_or("<unknown>")
                        .to_owned();
                    return Err(Error::Query(xmlest_query::Error::UnknownPredicate(missing)));
                }
            }
        }
        Ok(Cow::Owned(out))
    }

    /// Parses and exactly answers a path query (count of matches).
    /// Requires the data tree. Consumes the prepared form — sibling
    /// order is irrelevant to match semantics, so the canonical twig
    /// counts exactly what the original spelling does.
    pub fn count(&self, path: &str) -> Result<u64> {
        let Some(tree) = self.tree.as_ref() else {
            return Err(Error::NoData(
                "exact counting needs the data tree; this database was opened from a catalog"
                    .into(),
            ));
        };
        let prepared = self.prepare(path)?;
        Ok(count_matches(tree, &self.catalog, prepared.twig())?)
    }

    /// Parses and estimates a path query from the summaries. Repeated
    /// (or canonically equivalent) query strings skip the parser via the
    /// shared prepared-query cache; estimation always runs on the
    /// canonical twig, so equivalent spellings return bit-identical
    /// values.
    pub fn estimate(&self, path: &str) -> Result<xmlest_core::Estimate> {
        let prepared = self.prepare(path)?;
        Ok(self.estimator().estimate_twig(prepared.twig())?)
    }

    /// Estimates an already prepared query (refreshing it first if it
    /// was prepared under an older epoch) on the thread-local workspace.
    pub fn estimate_prepared(
        &self,
        prepared: &Arc<PreparedQuery>,
    ) -> Result<xmlest_core::Estimate> {
        let fresh = self.refresh_prepared(prepared)?;
        Ok(self.estimator().estimate_twig(fresh.twig())?)
    }

    /// Estimates a pre-parsed twig on a caller-owned workspace — the
    /// zero-allocation steady-state path for serving loops that
    /// estimate the same (or many) twigs repeatedly. The workspace's
    /// scratch buffers and result slots are reused across calls; leaf
    /// state is borrowed from the summaries, never cloned.
    pub fn estimate_twig_with(
        &self,
        ws: &mut xmlest_core::TwigWorkspace,
        twig: &xmlest_core::TwigNode,
    ) -> Result<xmlest_core::Estimate> {
        Ok(self.estimator().estimate_twig_with(ws, twig)?)
    }

    /// An estimation service over this database: parsed-twig cache plus
    /// a pool of reusable workspaces, with batched (rayon) estimation.
    pub fn service(&self) -> crate::service::EstimationService<'_> {
        crate::service::EstimationService::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "<department>\
        <faculty><name/><RA/></faculty>\
        <staff><name/></staff>\
        <faculty><name/><secretary/><RA/><RA/><RA/></faculty>\
        <lecturer><name/><TA/><TA/><TA/></lecturer>\
        <faculty><name/><secretary/><TA/><RA/><RA/><TA/></faculty>\
        <research_scientist><name/><secretary/><RA/><RA/><RA/><RA/></research_scientist>\
        </department>";

    fn db() -> Database {
        Database::load_str(FIG1, &SummaryConfig::paper_defaults().with_grid_size(4)).unwrap()
    }

    #[test]
    fn load_and_index() {
        let d = db();
        assert_eq!(d.index().get("faculty").unwrap().len(), 3);
        assert_eq!(d.index().get("TA").unwrap().len(), 5);
        assert!(d.index().get("nosuch").is_none());
        // Index lists are in document order.
        let fac = d.index().get("faculty").unwrap();
        assert!(fac
            .windows(2)
            .all(|w| w[0].interval.start < w[1].interval.start));
    }

    #[test]
    fn count_and_estimate_agree_in_spirit() {
        let d = db();
        assert_eq!(d.count("//faculty//TA").unwrap(), 2);
        let est = d.estimate("//faculty//TA").unwrap();
        assert!(est.value > 0.5 && est.value < 6.0, "estimate {}", est.value);
    }

    #[test]
    fn candidates_for_expressions() {
        let d = db();
        let named = d.candidates(&PredExpr::named("RA")).unwrap();
        assert_eq!(named.len(), 10);
        // Named predicates borrow the index list.
        assert!(matches!(named, Cow::Borrowed(_)));
        let any = d
            .candidates(&PredExpr::Base(xmlest_predicate::BasePredicate::AnyElement))
            .unwrap();
        assert_eq!(any.len(), d.tree().len());
        assert!(matches!(any, Cow::Owned(_)));
        assert!(d.candidates(&PredExpr::named("ghost")).is_err());
    }

    #[test]
    fn coeff_cache_fills_and_estimates_stay_stable() {
        // `sec` nests inside itself, so it overlaps and its joins take
        // the primitive (coefficient-table) path; the leaf descendants
        // `p` then get their tables cached.
        let d = Database::load_str(
            "<doc>\
               <sec><title/><sec><p/><p/></sec><p/></sec>\
               <sec><p/></sec>\
             </doc>",
            &SummaryConfig::paper_defaults().with_grid_size(6),
        )
        .unwrap();
        assert!(d.coeff_cache().is_empty());
        let first = d.estimate("//sec//p").unwrap().value;
        assert!(
            !d.coeff_cache().is_empty(),
            "primitive twig join did not populate the coefficient cache"
        );
        let filled = d.coeff_cache().len();
        // Re-estimating hits the cache and must not drift.
        for _ in 0..3 {
            assert_eq!(d.estimate("//sec//p").unwrap().value, first);
        }
        assert_eq!(d.coeff_cache().len(), filled, "re-estimation re-filled");
        // The cached answer matches the cache-free estimator.
        let plain = d
            .summaries()
            .estimator()
            .estimate_twig(&xmlest_query::parse_path("//sec//p").unwrap())
            .unwrap();
        assert!((plain.value - first).abs() < 1e-9);
    }

    #[test]
    fn workspace_estimates_match_plain_estimates() {
        let d = db();
        let mut ws = xmlest_core::TwigWorkspace::new();
        for path in [
            "//faculty//TA",
            "//department//faculty//RA",
            "//staff//name",
        ] {
            let plain = d.estimate(path).unwrap().value;
            let twig = xmlest_query::parse_path(path).unwrap();
            // Repeated workspace estimates are stable and agree.
            for _ in 0..3 {
                let ws_est = d.estimate_twig_with(&mut ws, &twig).unwrap().value;
                assert!(
                    (ws_est - plain).abs() < 1e-12,
                    "{path}: {ws_est} vs {plain}"
                );
            }
        }
    }

    #[test]
    fn unknown_query_name_errors() {
        let d = db();
        assert!(d.count("//faculty//GHOST").is_err());
        assert!(d.estimate("//faculty//GHOST").is_err());
    }

    #[test]
    fn estimate_reuses_parsed_twigs() {
        let d = db();
        assert_eq!(d.cached_twig_count(), 0);
        let first = d.estimate("//faculty//TA").unwrap().value;
        assert_eq!(d.cached_twig_count(), 1);
        for _ in 0..5 {
            assert_eq!(d.estimate("//faculty//TA").unwrap().value, first);
        }
        assert_eq!(d.cached_twig_count(), 1, "repeat paths re-parsed");
        d.estimate("//staff//name").unwrap();
        assert_eq!(d.cached_twig_count(), 2);
        // count() shares the cache.
        d.count("//faculty//TA").unwrap();
        assert_eq!(d.cached_twig_count(), 2);
    }

    #[test]
    fn add_and_remove_documents_incrementally() {
        let mut d = Database::load_documents(
            [("a.xml", "<a><x/><x/></a>"), ("b.xml", "<b><y/></b>")],
            &SummaryConfig::paper_defaults().with_grid_size(8),
        )
        .unwrap();
        assert_eq!(d.document_names(), vec!["a.xml", "b.xml"]);
        assert_eq!(d.summaries().get("x").unwrap().count, 2);
        assert!(d.shard_summaries("a.xml").is_some());

        // Adding a document with a brand-new tag extends the catalog.
        d.add_document("c.xml", "<a><x/><z/></a>").unwrap();
        assert_eq!(d.document_names().len(), 3);
        assert_eq!(d.summaries().get("x").unwrap().count, 3);
        assert_eq!(d.summaries().get("z").unwrap().count, 1);
        assert_eq!(d.count("//a//x").unwrap(), 3);
        assert_eq!(d.index().get("x").unwrap().len(), 3);

        d.remove_document("a.xml").unwrap();
        assert_eq!(d.document_names(), vec!["b.xml", "c.xml"]);
        assert_eq!(d.summaries().get("x").unwrap().count, 1);
        assert_eq!(d.count("//a//x").unwrap(), 1);
        assert!(d.remove_document("a.xml").is_err(), "already removed");

        // Single-document databases are not collections.
        let mut single = db();
        assert!(matches!(
            single.add_document("x", "<x/>"),
            Err(Error::NoData(_))
        ));
    }

    #[test]
    fn failed_rebuild_rolls_back_the_mutation() {
        use std::sync::atomic::Ordering;
        let _guard = test_faults::LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut d = Database::load_documents(
            [("a.xml", "<a><x/><x/></a>"), ("b.xml", "<b><y/></b>")],
            &SummaryConfig::paper_defaults().with_grid_size(8),
        )
        .unwrap();
        let before = d.estimate("//a//x").unwrap().value;
        let epoch = d.epoch();

        test_faults::FAIL_REBUILDS.store(1, Ordering::SeqCst);
        assert!(d.add_document("c.xml", "<a><x/><z/></a>").is_err());
        assert_eq!(d.epoch(), epoch, "failed mutation must not bump the epoch");
        assert_eq!(d.document_names(), vec!["a.xml", "b.xml"]);
        assert_eq!(
            d.estimate("//a//x").unwrap().value.to_bits(),
            before.to_bits()
        );
        assert_eq!(d.count("//a//x").unwrap(), 2, "old data still serves");

        // The collection is still mutable: the retried add succeeds and
        // sees the full collection.
        d.add_document("c.xml", "<a><x/><z/></a>").unwrap();
        assert_eq!(d.summaries().get("x").unwrap().count, 3);
        assert_eq!(d.count("//a//x").unwrap(), 3);

        // Removal rolls back too, preserving document order.
        test_faults::FAIL_REBUILDS.store(1, Ordering::SeqCst);
        assert!(d.remove_document("a.xml").is_err());
        assert_eq!(d.document_names(), vec!["a.xml", "b.xml", "c.xml"]);
        assert_eq!(d.count("//a//x").unwrap(), 3);
        d.remove_document("a.xml").unwrap();
        assert_eq!(d.document_names(), vec!["b.xml", "c.xml"]);
        assert_eq!(d.count("//a//x").unwrap(), 1);
    }

    /// A drift-triggered refresh that fails to rebuild must not unwind
    /// (or mis-report) the mutation that hosted it: the mutation has
    /// already committed, so the refresh failure is absorbed into the
    /// `failed_auto_refreshes` counter and retried by the next
    /// mutation. Returning the error instead would invite a caller to
    /// retry the add and insert the document twice.
    #[test]
    fn failed_auto_refresh_does_not_unwind_the_mutation() {
        use std::sync::atomic::Ordering;
        let _guard = test_faults::LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // A wide, evenly spread initial document keeps the baseline
        // skew low; the appended pile of same-tag leaves lands in the
        // tail buckets, so skew — and therefore drift — must rise.
        let mut spread = String::from("<a>");
        for _ in 0..24 {
            spread.push_str("<x><q/></x>");
        }
        spread.push_str("</a>");
        let pile = format!("<a>{}</a>", "<x/>".repeat(12));
        let mut d = Database::load_documents(
            [("a.xml", spread.as_str())],
            &SummaryConfig::paper_defaults()
                .with_grid_size(8)
                .with_equi_depth(true)
                .with_policy(xmlest_core::GridPolicy::Slack {
                    slack_percent: 500,
                    drift_threshold: 0.0,
                    auto_refresh: true,
                }),
        )
        .unwrap();

        test_faults::FAIL_REBUILDS.store(1, Ordering::SeqCst);
        // The append commits on the stable path; the auto refresh it
        // triggers hits the injected rebuild failure.
        d.add_document("b.xml", &pile).unwrap();
        assert_eq!(d.document_names(), vec!["a.xml", "b.xml"]);
        assert_eq!(d.count("//a//x").unwrap(), 36);
        let s = d.maintenance_stats();
        assert_eq!(s.stable_appends, 1);
        assert_eq!(s.failed_auto_refreshes, 1, "failure must be recorded");
        assert_eq!(s.refreshes, 0);
        assert!(s.drift > 0.0, "drift persists so a retry can fire");

        // The next mutation retries the refresh and succeeds.
        d.add_document("c.xml", &pile).unwrap();
        let s = d.maintenance_stats();
        assert_eq!(s.auto_refreshes, 1);
        assert_eq!(s.failed_auto_refreshes, 1);
        assert_eq!(d.count("//a//x").unwrap(), 48);
    }

    #[test]
    fn collection_survives_being_emptied() {
        let mut d = Database::load_documents(
            [("a.xml", "<a><x/></a>")],
            &SummaryConfig::paper_defaults().with_grid_size(4),
        )
        .unwrap();
        d.remove_document("a.xml").unwrap();
        assert!(d.document_names().is_empty());
        assert_eq!(d.summaries().get("x").unwrap().count, 0);
        // An emptied collection is still a collection: refilling works.
        d.add_document("b.xml", "<a><x/><x/></a>").unwrap();
        assert_eq!(d.summaries().get("x").unwrap().count, 2);
        assert_eq!(d.count("//a//x").unwrap(), 2);
    }

    #[test]
    fn attach_dtd_restores_schema_shortcuts_after_reopen() {
        let dtd_text = r#"
            <!ELEMENT department (faculty|staff)+>
            <!ELEMENT faculty (name, TA*)>
            <!ELEMENT staff (name)>
            <!ELEMENT name (#PCDATA)>
            <!ELEMENT TA (#PCDATA)>
        "#;
        let dtd = xmlest_xml::dtd::parse_dtd(dtd_text).unwrap().analyze();
        let d = Database::load_documents(
            [(
                "a.xml",
                "<department><faculty><name/><TA/></faculty><staff><name/></staff></department>",
            )],
            &SummaryConfig::paper_defaults()
                .with_grid_size(4)
                .with_dtd(dtd.clone()),
        )
        .unwrap();
        // TA cannot appear under staff: the DTD shortcut answers 0.
        let want = d
            .estimator()
            .estimate_pair("staff", "TA", xmlest_core::EstimateMethod::Auto)
            .unwrap();
        assert_eq!(want.method, "schema");
        assert_eq!(want.value, 0.0);

        let mut reopened = Database::open_catalog(&d.save_catalog()).unwrap();
        // Without the DTD the shortcut is gone (documented caveat)...
        let cold = reopened
            .estimator()
            .estimate_pair("staff", "TA", xmlest_core::EstimateMethod::Auto)
            .unwrap();
        assert_ne!(cold.method, "schema");
        // ...and re-attaching the same analysis restores it exactly.
        reopened.attach_dtd(dtd);
        let warm = reopened
            .estimator()
            .estimate_pair("staff", "TA", xmlest_core::EstimateMethod::Auto)
            .unwrap();
        assert_eq!(warm.method, "schema");
        assert_eq!(warm.value.to_bits(), want.value.to_bits());
    }

    #[test]
    fn catalog_round_trip_serves_identical_estimates() {
        let d = Database::load_documents(
            [
                ("a.xml", FIG1),
                (
                    "b.xml",
                    "<department><faculty><TA/><TA/></faculty></department>",
                ),
            ],
            &SummaryConfig::paper_defaults().with_grid_size(6),
        )
        .unwrap();
        // Warm the coefficient cache so tables are persisted too.
        let paths = ["//faculty//TA", "//department//RA", "//faculty//name"];
        let expected: Vec<f64> = paths.iter().map(|p| d.estimate(p).unwrap().value).collect();

        let bytes = d.save_catalog();
        let reopened = Database::open_catalog(&bytes).unwrap();
        assert!(!reopened.has_data());
        for (path, want) in paths.iter().zip(&expected) {
            let got = reopened.estimate(path).unwrap().value;
            assert!(
                got.to_bits() == want.to_bits(),
                "{path}: {got} vs {want} (not byte-identical)"
            );
        }
        // Shards round-trip with their names.
        assert_eq!(reopened.document_names(), vec!["a.xml", "b.xml"]);
        assert!(reopened.shard_summaries("b.xml").is_some());
        // Data-dependent operations fail cleanly.
        assert!(matches!(
            reopened.count("//faculty//TA"),
            Err(Error::NoData(_))
        ));
        assert!(matches!(
            reopened.candidates(&PredExpr::named("TA")),
            Err(Error::NoData(_))
        ));
    }

    /// Mutations and refreshes on a catalog-opened (source-less)
    /// database are typed errors, never panics, and never disturb the
    /// serving state.
    #[test]
    fn serving_only_database_rejects_mutations_with_typed_error() {
        let d = Database::load_documents(
            [("a.xml", "<a><x/><x/></a>"), ("b.xml", "<b><y/></b>")],
            &SummaryConfig::paper_defaults().with_grid_size(8),
        )
        .unwrap();
        let bytes = d.save_catalog();
        let mut reopened = Database::open_catalog(&bytes).unwrap();
        let before = reopened.estimate("//a//x").unwrap().value;
        let epoch = reopened.epoch();

        assert!(matches!(
            reopened.add_document("c.xml", "<a><x/></a>"),
            Err(Error::ServingOnly(_))
        ));
        assert!(matches!(
            reopened.remove_document("a.xml"),
            Err(Error::ServingOnly(_))
        ));
        assert!(matches!(
            reopened.refresh_grid(),
            Err(Error::ServingOnly(_))
        ));

        // The rejections changed nothing: same epoch, same estimates.
        assert_eq!(reopened.epoch(), epoch);
        assert_eq!(
            reopened.estimate("//a//x").unwrap().value.to_bits(),
            before.to_bits()
        );
        assert_eq!(reopened.document_names(), vec!["a.xml", "b.xml"]);
    }

    /// Repeated auto-refresh failures escalate: strikes accumulate, the
    /// exponential backoff window absorbs attempts, the degraded flag
    /// raises at [`DEGRADED_AFTER_STRIKES`], and one successful refresh
    /// clears it all.
    #[test]
    fn failed_refreshes_back_off_and_raise_the_degraded_flag() {
        use std::sync::atomic::Ordering;
        let _guard = test_faults::LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut spread = String::from("<a>");
        for _ in 0..24 {
            spread.push_str("<x><q/></x>");
        }
        spread.push_str("</a>");
        let pile = format!("<a>{}</a>", "<x/>".repeat(6));
        let mut d = Database::load_documents(
            [("a.xml", spread.as_str())],
            &SummaryConfig::paper_defaults()
                .with_grid_size(8)
                .with_equi_depth(true)
                .with_policy(xmlest_core::GridPolicy::Slack {
                    slack_percent: 2000,
                    drift_threshold: 0.0,
                    auto_refresh: true,
                }),
        )
        .unwrap();

        // Arm a losing streak long enough to cross the degraded
        // threshold, then keep mutating. Backoff windows of 1, 2, 4
        // mutations open between the attempts, so some mutations must
        // be recorded as skips rather than failures.
        test_faults::FAIL_REBUILDS.store(u32::MAX, Ordering::SeqCst);
        let mut mutations = 0u32;
        loop {
            d.add_document(format!("d{mutations}.xml"), &pile[..])
                .unwrap();
            mutations += 1;
            let s = d.maintenance_stats();
            if s.refresh_degraded {
                break;
            }
            assert!(mutations < 64, "degraded flag never raised");
        }
        let s = d.maintenance_stats();
        assert_eq!(s.refresh_strikes, DEGRADED_AFTER_STRIKES);
        assert_eq!(s.failed_auto_refreshes as u32, s.refresh_strikes);
        assert!(
            s.backoff_skips > 0,
            "backoff windows must absorb some attempts"
        );
        assert!(
            mutations as u64 > s.failed_auto_refreshes,
            "every mutation paying a doomed rebuild means backoff never engaged"
        );
        // Every mutation committed despite the refresh losing streak.
        assert_eq!(d.document_names().len() as u32, 1 + mutations);

        // Disarm the fault: the next out-of-window mutation refreshes
        // successfully and clears strikes, window and flag.
        test_faults::FAIL_REBUILDS.store(0, Ordering::SeqCst);
        let mut extra = 0u32;
        while d.maintenance_stats().refresh_degraded {
            d.add_document(format!("e{extra}.xml"), &pile[..]).unwrap();
            extra += 1;
            assert!(extra < 16, "successful refresh never cleared the flag");
        }
        let s = d.maintenance_stats();
        assert_eq!(s.refresh_strikes, 0);
        assert!(!s.refresh_degraded);
        assert!(s.refreshes >= 1);
    }

    /// A flipped byte inside one shard section quarantines just that
    /// document: the survivors keep serving, the report names the
    /// victim, and `repair` with the original source restores the exact
    /// clean estimates.
    #[test]
    fn degraded_open_quarantines_and_repair_restores() {
        let docs = [
            ("a.xml", "<a><x/><x/><q/></a>"),
            ("b.xml", "<b><y/><y/><y/></b>"),
            ("c.xml", "<c><x/><y/></c>"),
        ];
        let d = Database::load_documents(docs, &SummaryConfig::paper_defaults().with_grid_size(8))
            .unwrap();
        let want_x = d.estimate("//a//x").unwrap().value;
        let want_y = d.estimate("//b//y").unwrap().value;
        let mut bytes = d.save_catalog();

        // Find the second SHARD section (b.xml) and flip a byte deep in
        // its body. Frames sit after the 22-byte outer header:
        // kind u8, len u64, checksum u64, body.
        let mut at = 22usize;
        let mut shard_seen = 0;
        let target = loop {
            let kind = bytes[at];
            let len = u64::from_le_bytes(bytes[at + 1..at + 9].try_into().unwrap()) as usize;
            if kind == 3 {
                shard_seen += 1;
                if shard_seen == 2 {
                    break at + 17 + len / 2;
                }
            }
            at += 17 + len;
        };
        bytes[target] ^= 0x40;

        // Strict open refuses; degraded open serves the survivors.
        assert!(Database::open_catalog(&bytes).is_err());
        let (mut db, report) = Database::open_catalog_degraded(&bytes).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].name, "b.xml");
        assert!(db.is_degraded());
        assert_eq!(db.quarantined()[0].name, "b.xml");
        // a.xml and c.xml still estimate; b.xml's contribution is gone.
        assert_eq!(
            db.estimate("//a//x").unwrap().value.to_bits(),
            want_x.to_bits()
        );
        assert!(db.estimate("//b//y").unwrap().value < want_y);

        // Repair rejects wrong documents and accepts the original.
        let bad = db.repair([("b.xml", "<b><y/></b>")]).unwrap();
        assert_eq!(bad.rejected.len(), 1, "node-count mismatch must reject");
        assert!(db.is_degraded());
        let good = db.repair([("b.xml", "<b><y/><y/><y/></b>")]).unwrap();
        assert_eq!(good.repaired, vec!["b.xml".to_string()]);
        assert!(!db.is_degraded());
        assert_eq!(
            db.estimate("//b//y").unwrap().value.to_bits(),
            want_y.to_bits()
        );
        // Repaired databases stay serving-only.
        assert!(matches!(
            db.add_document("d.xml", "<d/>"),
            Err(Error::ServingOnly(_))
        ));
    }

    /// `open_store` walks generations newest-first: a corrupted newest
    /// generation falls back to the previous one, and the report says
    /// which generation served and why the newer one was skipped.
    #[test]
    fn open_store_falls_back_over_corrupt_generations() {
        use xmlest_core::{CatalogStore, MemBackend, StorageBackend};
        let backend = MemBackend::new();
        let store = CatalogStore::new(&backend);

        let mut d = Database::load_documents(
            [("a.xml", "<a><x/><x/></a>")],
            &SummaryConfig::paper_defaults().with_grid_size(8),
        )
        .unwrap();
        let gen1 = d.save_to_store(&store).unwrap();
        let want_old = d.estimate("//a//x").unwrap().value;
        d.add_document("b.xml", "<a><x/></a>").unwrap();
        let gen2 = d.save_to_store(&store).unwrap();
        assert!(gen2 > gen1);

        // Clean store: newest generation serves.
        let (db, open) = Database::open_store(&store).unwrap();
        assert_eq!(open.generation, gen2);
        assert!(open.report.is_clean() && open.skipped.is_empty());
        assert_eq!(db.document_names(), vec!["a.xml", "b.xml"]);

        // Corrupt the newest generation's header beyond lenient repair:
        // recovery falls back to the previous generation.
        let name = format!("gen-{gen2:012}.xctl");
        let mut bytes = backend.read(&name).unwrap();
        bytes[0] ^= 0xFF;
        backend.write(&name, &bytes).unwrap();
        let (db, open) = Database::open_store(&store).unwrap();
        assert_eq!(open.generation, gen1);
        assert_eq!(open.skipped.len(), 1);
        assert_eq!(open.skipped[0].generation, gen2);
        assert_eq!(
            db.estimate("//a//x").unwrap().value.to_bits(),
            want_old.to_bits()
        );
    }
}
