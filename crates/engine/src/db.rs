//! The database object: document + catalog + indexes + summaries.

use crate::error::{Error, Result};
use std::collections::BTreeMap;
use xmlest_core::{CoeffCache, Estimator, Summaries, SummaryConfig};
use xmlest_predicate::{Catalog, PredExpr};
use xmlest_query::structural::Item;
use xmlest_query::{count_matches, parse_path};
use xmlest_xml::parser::parse_str;
use xmlest_xml::{NodeId, XmlTree};

/// Element index: per catalog predicate, the matching nodes with their
/// intervals in document order — the input lists for structural joins.
#[derive(Debug, Default)]
pub struct ElementIndex {
    lists: BTreeMap<String, Vec<Item<NodeId>>>,
}

impl ElementIndex {
    pub fn build(tree: &XmlTree, catalog: &Catalog) -> ElementIndex {
        let mut lists = BTreeMap::new();
        for entry in catalog.iter() {
            let items: Vec<Item<NodeId>> = entry
                .predicate
                .matches(tree)
                .into_iter()
                .map(|n| Item::new(tree.interval(n), n))
                .collect();
            lists.insert(entry.name.clone(), items);
        }
        ElementIndex { lists }
    }

    pub fn get(&self, name: &str) -> Option<&[Item<NodeId>]> {
        self.lists.get(name).map(Vec::as_slice)
    }

    pub fn len(&self) -> usize {
        self.lists.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }
}

/// A loaded database.
pub struct Database {
    tree: XmlTree,
    catalog: Catalog,
    summaries: Summaries,
    index: ElementIndex,
    /// Memoized pH-join coefficient tables over `summaries`. Summaries
    /// are immutable for the life of the database, so entries never
    /// invalidate; every estimator handed out by [`Database::estimator`]
    /// shares this cache.
    coeff_cache: CoeffCache,
}

impl Database {
    /// Builds a database from an existing tree and catalog.
    pub fn new(tree: XmlTree, catalog: Catalog, config: &SummaryConfig) -> Result<Database> {
        let summaries = Summaries::build(&tree, &catalog, config)?;
        let index = ElementIndex::build(&tree, &catalog);
        Ok(Database {
            tree,
            catalog,
            summaries,
            index,
            coeff_cache: CoeffCache::new(),
        })
    }

    /// Parses an XML string, defines one predicate per element tag, and
    /// builds summaries with the given config.
    pub fn load_str(xml: &str, config: &SummaryConfig) -> Result<Database> {
        let tree = parse_str(xml)?;
        let mut catalog = Catalog::new();
        catalog.define_all_tags(&tree);
        Database::new(tree, catalog, config)
    }

    /// Loads a *collection* of documents, merged into the paper's
    /// mega-tree (Section 3.1): one synthetic root, each document a
    /// child subtree, one numbering space, one histogram set.
    pub fn load_documents<'a>(
        docs: impl IntoIterator<Item = (&'a str, &'a str)>,
        config: &SummaryConfig,
    ) -> Result<Database> {
        let mut fb = xmlest_xml::ForestBuilder::new();
        for (name, xml) in docs {
            fb.add_document(name, xml)?;
        }
        let tree = fb.finish()?.into_tree();
        let mut catalog = Catalog::new();
        catalog.define_all_tags(&tree);
        Database::new(tree, catalog, config)
    }

    pub fn tree(&self) -> &XmlTree {
        &self.tree
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn summaries(&self) -> &Summaries {
        &self.summaries
    }

    pub fn estimator(&self) -> Estimator<'_> {
        self.summaries.estimator().with_cache(&self.coeff_cache)
    }

    /// The shared coefficient cache (introspection / tests).
    pub fn coeff_cache(&self) -> &CoeffCache {
        &self.coeff_cache
    }

    pub fn index(&self) -> &ElementIndex {
        &self.index
    }

    /// Candidate list for a pattern-node predicate. Named predicates come
    /// from the index; other expressions are evaluated on the fly.
    pub fn candidates(&self, pred: &PredExpr) -> Result<Vec<Item<NodeId>>> {
        if let PredExpr::Named(name) = pred {
            return self
                .index
                .get(name)
                .map(<[Item<NodeId>]>::to_vec)
                .ok_or_else(|| xmlest_query::Error::UnknownPredicate(name.clone()).into());
        }
        let mut out = Vec::new();
        for node in self.tree.iter() {
            match pred.eval(&self.catalog, &self.tree, node) {
                Some(true) => out.push(Item::new(self.tree.interval(node), node)),
                Some(false) => {}
                None => {
                    let missing = pred
                        .referenced_names()
                        .into_iter()
                        .find(|n| !self.catalog.contains(n))
                        .unwrap_or("<unknown>")
                        .to_owned();
                    return Err(Error::Query(xmlest_query::Error::UnknownPredicate(missing)));
                }
            }
        }
        Ok(out)
    }

    /// Parses and exactly answers a path query (count of matches).
    pub fn count(&self, path: &str) -> Result<u64> {
        let twig = parse_path(path)?;
        Ok(count_matches(&self.tree, &self.catalog, &twig)?)
    }

    /// Parses and estimates a path query from the summaries.
    pub fn estimate(&self, path: &str) -> Result<xmlest_core::Estimate> {
        let twig = parse_path(path)?;
        Ok(self.estimator().estimate_twig(&twig)?)
    }

    /// Estimates a pre-parsed twig on a caller-owned workspace — the
    /// zero-allocation steady-state path for serving loops that
    /// estimate the same (or many) twigs repeatedly. The workspace's
    /// scratch buffers and result slots are reused across calls; leaf
    /// state is borrowed from the summaries, never cloned.
    pub fn estimate_twig_with(
        &self,
        ws: &mut xmlest_core::TwigWorkspace,
        twig: &xmlest_core::TwigNode,
    ) -> Result<xmlest_core::Estimate> {
        Ok(self.estimator().estimate_twig_with(ws, twig)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "<department>\
        <faculty><name/><RA/></faculty>\
        <staff><name/></staff>\
        <faculty><name/><secretary/><RA/><RA/><RA/></faculty>\
        <lecturer><name/><TA/><TA/><TA/></lecturer>\
        <faculty><name/><secretary/><TA/><RA/><RA/><TA/></faculty>\
        <research_scientist><name/><secretary/><RA/><RA/><RA/><RA/></research_scientist>\
        </department>";

    fn db() -> Database {
        Database::load_str(FIG1, &SummaryConfig::paper_defaults().with_grid_size(4)).unwrap()
    }

    #[test]
    fn load_and_index() {
        let d = db();
        assert_eq!(d.index().get("faculty").unwrap().len(), 3);
        assert_eq!(d.index().get("TA").unwrap().len(), 5);
        assert!(d.index().get("nosuch").is_none());
        // Index lists are in document order.
        let fac = d.index().get("faculty").unwrap();
        assert!(fac
            .windows(2)
            .all(|w| w[0].interval.start < w[1].interval.start));
    }

    #[test]
    fn count_and_estimate_agree_in_spirit() {
        let d = db();
        assert_eq!(d.count("//faculty//TA").unwrap(), 2);
        let est = d.estimate("//faculty//TA").unwrap();
        assert!(est.value > 0.5 && est.value < 6.0, "estimate {}", est.value);
    }

    #[test]
    fn candidates_for_expressions() {
        let d = db();
        let named = d.candidates(&PredExpr::named("RA")).unwrap();
        assert_eq!(named.len(), 10);
        let any = d
            .candidates(&PredExpr::Base(xmlest_predicate::BasePredicate::AnyElement))
            .unwrap();
        assert_eq!(any.len(), d.tree().len());
        assert!(d.candidates(&PredExpr::named("ghost")).is_err());
    }

    #[test]
    fn coeff_cache_fills_and_estimates_stay_stable() {
        // `sec` nests inside itself, so it overlaps and its joins take
        // the primitive (coefficient-table) path; the leaf descendants
        // `p` then get their tables cached.
        let d = Database::load_str(
            "<doc>\
               <sec><title/><sec><p/><p/></sec><p/></sec>\
               <sec><p/></sec>\
             </doc>",
            &SummaryConfig::paper_defaults().with_grid_size(6),
        )
        .unwrap();
        assert!(d.coeff_cache().is_empty());
        let first = d.estimate("//sec//p").unwrap().value;
        assert!(
            !d.coeff_cache().is_empty(),
            "primitive twig join did not populate the coefficient cache"
        );
        let filled = d.coeff_cache().len();
        // Re-estimating hits the cache and must not drift.
        for _ in 0..3 {
            assert_eq!(d.estimate("//sec//p").unwrap().value, first);
        }
        assert_eq!(d.coeff_cache().len(), filled, "re-estimation re-filled");
        // The cached answer matches the cache-free estimator.
        let plain = d
            .summaries()
            .estimator()
            .estimate_twig(&xmlest_query::parse_path("//sec//p").unwrap())
            .unwrap();
        assert!((plain.value - first).abs() < 1e-9);
    }

    #[test]
    fn workspace_estimates_match_plain_estimates() {
        let d = db();
        let mut ws = xmlest_core::TwigWorkspace::new();
        for path in [
            "//faculty//TA",
            "//department//faculty//RA",
            "//staff//name",
        ] {
            let plain = d.estimate(path).unwrap().value;
            let twig = xmlest_query::parse_path(path).unwrap();
            // Repeated workspace estimates are stable and agree.
            for _ in 0..3 {
                let ws_est = d.estimate_twig_with(&mut ws, &twig).unwrap().value;
                assert!(
                    (ws_est - plain).abs() < 1e-12,
                    "{path}: {ws_est} vs {plain}"
                );
            }
        }
    }

    #[test]
    fn unknown_query_name_errors() {
        let d = db();
        assert!(d.count("//faculty//GHOST").is_err());
        assert!(d.estimate("//faculty//GHOST").is_err());
    }
}
