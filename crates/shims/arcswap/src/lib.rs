//! Offline stand-in for the `arc-swap` crate: an atomically swappable
//! `Arc<T>` whose read side never blocks, never spins on a lock, and
//! allocates nothing.
//!
//! The build container has no network access, so this mirrors the
//! subset of the real crate's API the workspace uses — [`ArcSwap::new`],
//! [`ArcSwap::from_pointee`], [`ArcSwap::load`], [`ArcSwap::load_full`],
//! [`ArcSwap::store`], [`ArcSwap::swap`] — with the same semantics:
//! swapping the workspace dependency for the real `arc-swap` is a
//! one-line change in the root manifest.
//!
//! ## How it works
//!
//! The cell holds a raw pointer obtained from [`Arc::into_raw`] in an
//! `AtomicPtr`. Readers protect the pointer they are about to
//! dereference with a **hazard pointer**: publish the pointer into a
//! per-guard slot of a global, append-only registry, then re-read the
//! cell to confirm the pointer is still current (retrying on the rare
//! concurrent swap). Writers swap the cell pointer and move the old
//! value onto a retire list; a retired value is dropped only once no
//! hazard slot protects it. The read path is therefore a handful of
//! atomic operations — no locks, no reference-count contention on the
//! shared `Arc` — and obstruction-free: it retries only while a writer
//! is actively publishing, which in this workspace happens once per
//! collection mutation, not per read.
//!
//! Registry slots are recycled, never freed; the registry's footprint
//! is bounded by the maximum number of *simultaneous* guards ever live
//! (threads × nesting depth), not by call counts.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// One hazard slot: the pointer a guard is currently protecting, plus
/// the recycling flag. Nodes are leaked `Box`es linked into a global
/// list — they live for the process, so `&'static` references to them
/// are always valid.
struct HazardSlot {
    /// The raw pointer some live guard protects (null when idle). Typed
    /// `*mut ()` because one registry serves every `ArcSwap<T>`.
    protected: AtomicPtr<()>,
    /// Whether a live guard owns this slot; cleared on guard drop so the
    /// slot can be recycled by any later guard on any thread.
    active: AtomicBool,
    next: *const HazardSlot,
}

// SAFETY: `next` is written once before the node is published to the
// registry (inside `acquire_slot`, while the node is still exclusively
// owned) and read-only afterwards; the atomics are Sync by themselves.
unsafe impl Sync for HazardSlot {}
// SAFETY: same argument — the node carries no thread-affine state.
unsafe impl Send for HazardSlot {}

/// Head of the global hazard-slot registry (append-only linked list).
static REGISTRY: AtomicPtr<HazardSlot> = AtomicPtr::new(std::ptr::null_mut());

/// Claims an idle slot, recycling a released one when possible and
/// appending a fresh node otherwise. Lock-free: a walk plus one CAS.
fn acquire_slot() -> &'static HazardSlot {
    let mut cur = REGISTRY.load(Ordering::Acquire);
    while !cur.is_null() {
        // SAFETY: registry nodes are leaked and never freed, so any
        // pointer read from the list stays valid forever.
        let slot = unsafe { &*cur };
        if !slot.active.load(Ordering::Relaxed)
            && slot
                .active
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            return slot;
        }
        cur = slot.next.cast_mut();
    }
    let slot = Box::leak(Box::new(HazardSlot {
        protected: AtomicPtr::new(std::ptr::null_mut()),
        active: AtomicBool::new(true),
        next: std::ptr::null(),
    }));
    let mut head = REGISTRY.load(Ordering::Acquire);
    loop {
        slot.next = head;
        match REGISTRY.compare_exchange_weak(
            head,
            slot as *mut HazardSlot,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return slot,
            Err(h) => head = h,
        }
    }
}

/// Collects every pointer currently protected by an active slot.
fn protected_set() -> Vec<usize> {
    let mut out = Vec::new();
    let mut cur = REGISTRY.load(Ordering::Acquire);
    while !cur.is_null() {
        // SAFETY: registry nodes are leaked and never freed.
        let slot = unsafe { &*cur };
        let p = slot.protected.load(Ordering::SeqCst);
        if !p.is_null() {
            out.push(p as usize);
        }
        cur = slot.next.cast_mut();
    }
    out
}

/// An atomically swappable `Arc<T>`. Reads are lock-free and do not
/// touch the `Arc`'s reference counts; writes are serialized only
/// against each other (on the internal retire list), never against
/// readers.
pub struct ArcSwap<T> {
    /// Current value, as an owning raw pointer (`Arc::into_raw`).
    ptr: AtomicPtr<T>,
    /// Swapped-out values awaiting reclamation, each an owning pointer
    /// still protected by at least one hazard slot at its last scan.
    /// Writer-side only — the read path never touches this lock.
    retired: Mutex<Vec<usize>>, // xlint: allow(lock-free-serving, "writer-side retire list; load() never acquires it")
}

// SAFETY: the cell hands out &T and Arc<T> across threads and drops T
// from whichever thread retires last, so both bounds are required; the
// hazard-pointer protocol makes the raw-pointer plumbing thread-safe.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
// SAFETY: see the Send impl above.
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

/// A read guard: dereferences to the snapshot value, keeps it protected
/// (and therefore alive) until dropped. Cheap — no allocation, no
/// reference counting.
pub struct Guard<'a, T> {
    slot: &'static HazardSlot,
    ptr: *const T,
    _cell: PhantomData<&'a ArcSwap<T>>,
}

impl<T> std::ops::Deref for Guard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: `ptr` came from `Arc::into_raw` and is protected by
        // this guard's hazard slot, so no writer has dropped it.
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for Guard<'_, T> {
    fn drop(&mut self) {
        self.slot
            .protected
            .store(std::ptr::null_mut(), Ordering::Release);
        self.slot.active.store(false, Ordering::Release);
    }
}

impl<T> ArcSwap<T> {
    /// A cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// A cell holding `Arc::new(value)`.
    pub fn from_pointee(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// Lock-free read: returns a guard dereferencing to the current
    /// value. The guard must be dropped before the cell itself can be;
    /// hold it across a whole read operation and the value is immutable
    /// and alive for the duration, no matter how many swaps land
    /// meanwhile.
    pub fn load(&self) -> Guard<'_, T> {
        let slot = acquire_slot();
        loop {
            let p = self.ptr.load(Ordering::Acquire);
            slot.protected.store(p.cast(), Ordering::SeqCst);
            // Revalidate: if the cell still holds `p`, any writer that
            // retires `p` afterwards is guaranteed (by the SeqCst
            // store/scan pair) to observe our hazard and keep it alive.
            if self.ptr.load(Ordering::SeqCst) == p {
                return Guard {
                    slot,
                    ptr: p,
                    _cell: PhantomData,
                };
            }
        }
    }

    /// Like [`ArcSwap::load`], but returns an owned `Arc` (one extra
    /// strong count) that outlives the cell.
    pub fn load_full(&self) -> Arc<T> {
        let guard = self.load();
        // SAFETY: `guard.ptr` came from `Arc::into_raw` and the guard
        // keeps the allocation alive across the count increment.
        unsafe {
            Arc::increment_strong_count(guard.ptr);
            Arc::from_raw(guard.ptr)
        }
    }

    /// Publishes `new` as the current value; the previous value is
    /// dropped once no reader protects it.
    pub fn store(&self, new: Arc<T>) {
        let old = self
            .ptr
            .swap(Arc::into_raw(new).cast_mut(), Ordering::SeqCst);
        self.retire(old);
    }

    /// Publishes `new` and returns the previous value.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let old = self
            .ptr
            .swap(Arc::into_raw(new).cast_mut(), Ordering::SeqCst);
        // SAFETY: `old` came from `Arc::into_raw`; the cell's own strong
        // count is retired below, and the caller receives a *new* count,
        // so live guards stay safe even if the caller drops it at once.
        let returned = unsafe {
            Arc::increment_strong_count(old);
            Arc::from_raw(old)
        };
        self.retire(old);
        returned
    }

    /// Moves a swapped-out owning pointer onto the retire list, then
    /// drops every retired pointer no hazard slot protects.
    fn retire(&self, old: *const T) {
        let locked = self.retired.lock(); // xlint: allow(lock-free-serving, "writer-side retire list; load() never acquires it")
        let mut retired = match locked {
            Ok(r) => r,
            Err(poisoned) => poisoned.into_inner(),
        };
        retired.push(old as usize);
        let hazards = protected_set();
        retired.retain(|&p| {
            if hazards.contains(&p) {
                true
            } else {
                // SAFETY: `p` was pushed by a writer as an owning
                // `Arc::into_raw` pointer and no reader protects it, so
                // this strong count is the retire list's to release.
                unsafe { drop(Arc::from_raw(p as *const T)) };
                false
            }
        });
    }
}

impl<T: Default> Default for ArcSwap<T> {
    fn default() -> Self {
        ArcSwap::from_pointee(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcSwap").field(&*self.load()).finish()
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // No guard can outlive the cell (guards borrow it), so the
        // current and every still-retired value are exclusively ours.
        let p = *self.ptr.get_mut();
        // SAFETY: the cell owns one strong count of its current value.
        unsafe { drop(Arc::from_raw(p)) };
        let retired = match self.retired.get_mut() {
            Ok(r) => r,
            Err(poisoned) => poisoned.into_inner(),
        };
        for &r in retired.iter() {
            // SAFETY: retired pointers are owning counts pushed by
            // `retire`; with no guards left they are safe to release.
            unsafe { drop(Arc::from_raw(r as *const T)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn load_sees_stores() {
        let cell = ArcSwap::from_pointee(1u64);
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        assert_eq!(*cell.load_full(), 2);
        let old = cell.swap(Arc::new(3));
        assert_eq!(*old, 2);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn guard_keeps_old_value_alive_across_swaps() {
        struct DropFlag(Arc<AtomicUsize>);
        impl Drop for DropFlag {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ArcSwap::from_pointee(DropFlag(drops.clone()));
        let guard = cell.load();
        cell.store(Arc::new(DropFlag(drops.clone())));
        // The old value is retired but protected by `guard`.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(guard);
        // The next store's reclamation pass frees both retired values.
        cell.store(Arc::new(DropFlag(drops.clone())));
        assert_eq!(drops.load(Ordering::SeqCst), 2);
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn nested_guards_protect_independently() {
        let a = ArcSwap::from_pointee(10u32);
        let b = ArcSwap::from_pointee(20u32);
        let ga = a.load();
        let gb = b.load();
        a.store(Arc::new(11));
        b.store(Arc::new(21));
        assert_eq!((*ga, *gb), (10, 20));
        drop((ga, gb));
        assert_eq!((*a.load(), *b.load()), (11, 21));
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let cell = Arc::new(ArcSwap::from_pointee(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = &cell;
                let stop = &stop;
                s.spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load();
                        assert!(v >= last, "values must be monotone");
                        last = v;
                    }
                });
            }
            for i in 1..=2000u64 {
                cell.store(Arc::new(i));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(*cell.load(), 2000);
    }
}
