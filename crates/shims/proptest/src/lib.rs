//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset the workspace's property tests use: integer-range
//! and `\PC{n,m}` string strategies, `prop_map`, `collection::vec`,
//! `sample::select`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros. Cases are generated from a deterministic
//! per-test seed (hash of the test name), so CI failures reproduce
//! locally; there is **no shrinking** — a failure reports the case
//! number, and the deterministic stream makes the failing inputs
//! recoverable by re-running the test under a debugger.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure carried out of a test case by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

pub mod test_runner {
    use super::*;

    /// Deterministic per-test random source.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Seeded from the test name so each test has a stable stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h),
            }
        }
    }
}

use test_runner::TestRng;

/// A generator of values for one test argument.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<F, R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        Map { inner: self, f }
    }
}

/// Mapped strategy (`prop_map`).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> R, R> Strategy for Map<S, F> {
    type Value = R;
    fn sample(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// String pattern strategy. Supports the `\PC{lo,hi}` form (a string of
/// `lo..hi` printable characters) the workspace tests use; other regex
/// forms are rejected loudly rather than silently misgenerated.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_pc_pattern(self)
            .unwrap_or_else(|| panic!("proptest-shim: unsupported string pattern {self:?}"));
        let len = if hi > lo {
            rng.rng.random_range(lo..hi)
        } else {
            lo
        };
        // Bias toward markup-relevant characters so parser fuzzing hits
        // interesting paths, with some multi-byte characters mixed in.
        const POOL: &[char] = &[
            '<', '>', '&', '/', '"', '\'', '=', ';', '!', '?', '[', ']', '-', ' ', '.', ':', 'a',
            'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '1', '9', '_', '#', '(', ')', '*', 'é', 'λ',
            '中', '\u{200b}',
        ];
        (0..len)
            .map(|_| POOL[rng.rng.random_range(0..POOL.len())])
            .collect()
    }
}

fn parse_pc_pattern(p: &str) -> Option<(usize, usize)> {
    let body = p.strip_prefix("\\PC{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((
        lo.trim().parse().ok()?,
        hi.trim().parse::<usize>().ok()? + 1,
    ))
}

pub mod collection {
    use super::*;

    /// `vec(element, size_range)` — length drawn from the half-open range.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.end > self.size.start {
                rng.rng.random_range(self.size.clone())
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::*;

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select { options }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.rng.random_range(0..self.options.len())].clone()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError {
                message: format!("assertion failed: {}", stringify!($cond)),
            });
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError {
                message: format!($($fmt)+),
            });
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError {
                message: format!("assertion failed: {:?} != {:?}", a, b),
            });
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError {
                message: format!($($fmt)+),
            });
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {case}/{}: {e}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pc_pattern_parses() {
        assert_eq!(super::parse_pc_pattern("\\PC{0,200}"), Some((0, 201)));
        assert_eq!(super::parse_pc_pattern("\\PC{3,8}"), Some((3, 9)));
        assert_eq!(super::parse_pc_pattern("[a-z]+"), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u8..9, n in 0usize..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(n < 5);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u8..7, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            for x in &v {
                prop_assert!(*x < 7);
            }
        }

        #[test]
        fn map_and_select(s in prop::sample::select(vec!["a", "bb"]), t in "\\PC{0,10}") {
            prop_assert!(s == "a" || s == "bb");
            prop_assert!(t.chars().count() <= 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_reported() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u8..1) {
                prop_assert_eq!(x, 1, "x was {}", x);
            }
        }
        inner();
    }
}
