//! Offline stand-in for the `crossbeam` crate: the subset the workspace
//! uses — [`channel`] (bounded MPMC), [`utils::CachePadded`], and
//! [`thread::scope`] — with API shapes matching the real crate, so the
//! workspace dependency swaps for real `crossbeam` with a one-line
//! manifest change if the environment gets networked.
//!
//! The channel is a `Mutex<VecDeque>` + two `Condvar`s rather than the
//! real crate's lock-free segments: correct, fair enough, and plenty
//! for the admission queue and maintenance command channel it backs
//! (those paths are allowed to block — only the snapshot *read* path in
//! the engine has a no-lock budget, and it never touches a channel).

/// Multi-producer multi-consumer bounded channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::Duration;

    /// Why a send failed: the channel can only be disconnected (every
    /// receiver dropped) — a full channel blocks instead.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a `try_send` failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity.
        Full(T),
        /// Every receiver dropped.
        Disconnected(T),
    }

    /// Why a blocking `recv` failed: every sender dropped and the queue
    /// drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `try_recv` failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Every sender dropped and the queue drained.
        Disconnected,
    }

    /// Why a `recv_timeout` failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with nothing queued.
        Timeout,
        /// Every sender dropped and the queue drained.
        Disconnected,
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    /// The sending half; clone freely for more producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely for more consumers (each queued
    /// value is delivered to exactly one of them).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded MPMC channel with room for `cap` queued values
    /// (at least one).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Queues `value`, blocking while the channel is full. Fails
        /// only when every receiver dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.lock();
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                if queue.len() < self.shared.cap {
                    queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                queue = match self.shared.not_full.wait(queue) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Queues `value` without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.shared.lock();
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if queue.len() >= self.shared.cap {
                return Err(TrySendError::Full(value));
            }
            queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a value, blocking while the channel is empty. Fails
        /// only when every sender dropped and the queue drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = match self.shared.not_empty.wait(queue) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Dequeues a value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.lock();
            if let Some(v) = queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Dequeues a value, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let mut queue = self.shared.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let (guard, result) = match self.shared.not_empty.wait_timeout(queue, timeout) {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                queue = guard;
                if result.timed_out() {
                    return match queue.pop_front() {
                        Some(v) => {
                            self.shared.not_full.notify_one();
                            Ok(v)
                        }
                        None => Err(RecvTimeoutError::Timeout),
                    };
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Wake blocked receivers so they observe disconnection.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Wake blocked senders so they observe disconnection.
                self.shared.not_full.notify_all();
            }
        }
    }
}

/// Utility types.
pub mod utils {
    /// Pads and aligns a value to 64 bytes so adjacent values in an
    /// array never share a cache line (the false-sharing guard the real
    /// crate provides; 64 covers x86-64 and most aarch64 parts).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(64))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line padding.
        pub fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

/// Scoped threads, mirroring `crossbeam::thread::scope`'s shape over
/// `std::thread::scope` (stable since 1.63): spawned threads may borrow
/// from the caller's stack and are joined before `scope` returns.
pub mod thread {
    /// Runs `f` with a [`std::thread::Scope`]; every thread spawned on
    /// it joins before this returns. Unlike real crossbeam the result
    /// is not wrapped in `Result` — a panicking child propagates on
    /// join, which is what every caller in this workspace wants anyway.
    pub fn scope<'env, F, R>(f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        std::thread::scope(f)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvTimeoutError, TryRecvError, TrySendError};
    use std::time::Duration;

    #[test]
    fn bounded_send_recv_fifo() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert!(matches!(tx.try_send(9), Err(TrySendError::Full(9))));
        assert_eq!(
            (0..4).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn disconnect_is_observed_both_ways() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(42).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(42));
    }

    #[test]
    fn mpmc_across_threads_delivers_everything_once() {
        let (tx, rx) = bounded(8);
        let total: usize = std::thread::scope(|s| {
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            std::thread::scope(|p| {
                for chunk in 0..4 {
                    let tx = tx.clone();
                    p.spawn(move || {
                        for i in 0..25usize {
                            tx.send(chunk * 25 + i).unwrap();
                        }
                    });
                }
            });
            drop(tx);
            let mut all: Vec<usize> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
            all.len()
        });
        assert_eq!(total, 100);
    }
}
