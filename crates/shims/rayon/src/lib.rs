//! Offline stand-in for the `rayon` crate.
//!
//! Implements the slice-side subset the workspace uses — `par_iter()`
//! followed by `map(...).collect()`, plus [`join`] — on std scoped
//! threads. Items are split into one contiguous chunk per available
//! core; results are returned in input order, so a `collect` is
//! deterministic and order-stable exactly like upstream rayon's
//! `IndexedParallelIterator` collect.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(items).max(1)
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim join worker panicked"))
    })
}

/// `.par_iter()` entry point for slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParSlice<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

/// The subset of rayon's `ParallelIterator` the workspace needs.
pub trait ParallelIterator: Sized {
    type Item;

    /// Evaluates the pipeline, returning per-item results in input order.
    fn run(self) -> Vec<Self::Item>;

    fn map<F, R>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        ParMap { inner: self, f }
    }

    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;

    fn run(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// A mapped parallel pipeline; the map stage is where the fan-out runs.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'a, T, F, R> ParallelIterator for ParMap<ParSlice<'a, T>, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        let items = self.inner.items;
        let workers = worker_count(items.len());
        if workers <= 1 {
            return items.iter().map(self.f).collect();
        }
        let chunk = items.len().div_ceil(workers);
        let f = &self.f;
        let mut out: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|batch| scope.spawn(move || batch.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim map worker panicked"))
                .collect()
        });
        let mut flat = Vec::with_capacity(items.len());
        for part in out.drain(..) {
            flat.extend(part);
        }
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn empty_input_ok() {
        let xs: Vec<u32> = Vec::new();
        let out: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
