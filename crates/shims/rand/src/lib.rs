//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the small API surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng`], and the [`RngExt`] sampling helpers — backed by a
//! deterministic xoshiro256\*\* generator seeded via SplitMix64. The
//! data generators only need reproducible, well-mixed streams, not
//! cryptographic quality, and determinism per seed is the one property
//! the workloads rely on.

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core uniform-bits interface: everything else derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling helpers, mirroring the `rand 0.9` method names.
pub trait RngExt: RngCore {
    /// Uniform value in `range` (half-open).
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self, 0.0..1.0) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty sample range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the bias for
                // spans far below 2^64 is negligible for data generation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + hi as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (not the upstream `StdRng`
    /// algorithm, but a drop-in for seeded, reproducible streams).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(17);
        let mut b = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
