//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use: groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, sample-size
//! and throughput knobs, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a calibrated wall-clock loop: each sample runs
//! enough iterations to cover a minimum window, and the reported figure
//! is the median over samples (robust to scheduler noise, like
//! upstream's slope estimate in spirit if not in statistics).
//!
//! Two environment variables drive CI integration:
//!
//! * `XMLEST_BENCH_JSON=path` — append every measurement as a JSON array
//!   to `path` when the harness finishes (used by the `ph_join_scaling`
//!   smoke run to produce `BENCH_phjoin.json`);
//! * `XMLEST_BENCH_FAST=1` — shrink warm-up and sample windows ~10× for
//!   smoke runs.

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub group: String,
    pub id: String,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
    pub throughput_bytes: Option<u64>,
}

/// Identifier of one benchmark within a group: `name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// Throughput annotation (recorded, reported in JSON).
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// The harness root. Collects measurements across groups and reports
/// them when dropped.
pub struct Criterion {
    results: Vec<Measurement>,
    fast: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            results: Vec::new(),
            fast: std::env::var("XMLEST_BENCH_FAST").is_ok_and(|v| v == "1"),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput_bytes: None,
        }
    }

    /// Renders all collected measurements as a JSON array.
    fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, m) in self.results.iter().enumerate() {
            let _ = write!(
                out,
                "  {{\"group\": {:?}, \"id\": {:?}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"samples\": {}, \"iters_per_sample\": {}, \"throughput_bytes\": {}}}",
                m.group,
                m.id,
                m.median_ns,
                m.mean_ns,
                m.samples,
                m.iters_per_sample,
                m.throughput_bytes
                    .map_or("null".to_owned(), |b| b.to_string()),
            );
            out.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]\n");
        out
    }

    /// Writes the JSON report if `XMLEST_BENCH_JSON` is set. Called by
    /// `criterion_main!` after all groups run.
    pub fn finalize(&self) {
        if let Ok(path) = std::env::var("XMLEST_BENCH_JSON") {
            if let Err(e) = std::fs::write(&path, self.to_json()) {
                eprintln!("criterion-shim: cannot write {path}: {e}");
            } else {
                eprintln!(
                    "criterion-shim: wrote {} results to {path}",
                    self.results.len()
                );
            }
        }
    }
}

/// A named group of benchmarks sharing knobs.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput_bytes: Option<u64>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput_bytes = match t {
            Throughput::Bytes(b) => Some(b),
            Throughput::Elements(_) => None,
        };
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.criterion.fast);
        f(&mut b);
        self.record(id, b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.criterion.fast);
        f(&mut b, input);
        self.record(id, b);
        self
    }

    pub fn finish(&mut self) {}

    fn record(&mut self, id: BenchmarkId, b: Bencher) {
        let Some(mut m) = b.result else { return };
        m.group = self.name.clone();
        m.id = id.full;
        m.throughput_bytes = self.throughput_bytes;
        eprintln!(
            "bench {:<40} {:>14.1} ns/iter ({} samples x {} iters)",
            format!("{}/{}", m.group, m.id),
            m.median_ns,
            m.samples,
            m.iters_per_sample
        );
        self.criterion.results.push(m);
    }
}

/// Passed to the closure; `iter` runs and times the payload.
pub struct Bencher {
    sample_size: usize,
    fast: bool,
    result: Option<Measurement>,
}

impl Bencher {
    fn new(sample_size: usize, fast: bool) -> Self {
        Bencher {
            sample_size,
            fast,
            result: None,
        }
    }

    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let (warmup, window) = if self.fast {
            (Duration::from_millis(5), Duration::from_millis(2))
        } else {
            (Duration::from_millis(50), Duration::from_millis(20))
        };

        // Warm up and calibrate: how many iterations fit the window?
        let mut iters: u64 = 1;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if warm_start.elapsed() >= warmup && elapsed >= Duration::from_micros(50) {
                let per_iter = elapsed.as_nanos().max(1) / iters as u128;
                iters = (window.as_nanos() / per_iter).clamp(1, 1 << 24) as u64;
                break;
            }
            iters = iters.saturating_mul(2).min(1 << 24);
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        self.result = Some(Measurement {
            group: String::new(),
            id: String::new(),
            median_ns: median,
            mean_ns: mean,
            samples: self.sample_size,
            iters_per_sample: iters,
            throughput_bytes: None,
        });
    }
}

/// Declares a bundle of bench functions, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $f(c); )+
        }
    };
}

/// Entry point: runs every group against one shared `Criterion`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("XMLEST_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].median_ns > 0.0);
        let json = c.to_json();
        assert!(json.contains("\"id\": \"noop_sum\""));
    }

    #[test]
    fn ids_compose() {
        let id = BenchmarkId::new("three_pass", 64);
        assert_eq!(id.full, "three_pass/64");
    }
}
