//! `xmlest-xobs` — offline, dependency-free observability core for the
//! estimation engine: counters, latency histograms, an event journal,
//! and stage span timing behind one cloneable [`Recorder`] handle.
//!
//! # Design: why sharded, why log buckets, why a seqlock journal
//!
//! The engine's warm estimate path is wait-free and zero-alloc
//! (enforced by `tests/alloc_discipline.rs` and xlint rule R6), so
//! everything that records on that path must be too:
//!
//! - **Counters** ([`Counter`]) are split into [`SHARDS`] cache-padded
//!   `AtomicU64` cells. Each thread picks a shard once (round-robin at
//!   first use, cached in a `const`-initialized thread-local `Cell`, so
//!   shard selection allocates nothing) and every increment is a single
//!   relaxed `fetch_add` on its own cache line. Reading a counter
//!   *folds* the shards — sums them — which is O(SHARDS) and racy only
//!   in the benign sense: a fold concurrent with writers sees some
//!   prefix of each writer's increments, never a torn or double count.
//! - **Latency histograms** ([`LatencyHistogram`]) bucket a nanosecond
//!   value by its bit width (bucket *b* holds `2^(b-1) ..= 2^b - 1`),
//!   so recording is one `leading_zeros` plus one sharded `fetch_add`
//!   — no comparison ladder, no floats, and ~1 significant digit of
//!   resolution, plenty for p50/p99 serving dashboards. Quantiles are
//!   computed at snapshot time from the folded bucket counts and are
//!   reported as the *upper edge* of the selected bucket, so a reported
//!   quantile always bounds the true sample from above (and its bucket
//!   lower edge bounds it from below) — a property test in
//!   `tests/telemetry.rs` pins this.
//! - **The event journal** ([`EventJournal`]) is a fixed-capacity
//!   power-of-two ring of per-slot seqlocks. A writer claims a global
//!   sequence number with one `fetch_add`, marks its slot odd, writes
//!   the fixed-size payload, and marks the slot even; readers validate
//!   the sequence before and after copying and simply skip slots that
//!   are mid-write. Writers never wait, never allocate, and never
//!   block readers; the journal keeps the most recent `capacity`
//!   events and drops older ones by construction.
//! - **Spans** ([`Recorder::span`], [`StageClock`]) time the estimate
//!   pipeline stages ([`Stage`]). When the recorder is disabled no
//!   clock is read at all, which is what makes the
//!   `telemetry_overhead` bench's on/off comparison honest.
//!
//! Registration (creating a named counter/histogram) takes a write
//! lock and may allocate — it is a cold, startup-time operation. The
//! typed registry requires a non-empty doc string for every metric;
//! xlint rule R7 (`metrics-discipline`) enforces the same contract
//! lexically across the workspace.

pub mod clock;

use std::cell::Cell;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Number of counter/histogram shards. A small power of two: enough to
/// keep a handful of serving threads off each other's cache lines
/// without bloating fold cost.
pub const SHARDS: usize = 16;
const SHARD_MASK: usize = SHARDS - 1;

/// Histogram bucket count: bucket 0 holds exact zeros, bucket `b >= 1`
/// holds values whose bit width is `b` (range `2^(b-1) ..= 2^b - 1`).
pub const BUCKETS: usize = 65;

/// One cache line per shard so concurrent writers don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Round-robin shard assignment, cached per thread. `const`-initialized
/// thread-local access performs no allocation and no locking, keeping
/// `Counter::add` legal on the zero-alloc warm path.
#[inline]
fn shard_index() -> usize {
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    SHARD.with(|s| {
        let cached = s.get();
        if cached != usize::MAX {
            return cached;
        }
        let fresh = NEXT.fetch_add(1, Ordering::Relaxed) & SHARD_MASK;
        s.set(fresh);
        fresh
    })
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonic, sharded, lock-free counter. Cloning shares the
/// underlying shards; [`Counter::value`] folds them. Counters are
/// **monotonic for the life of the owning registry** — there is no
/// reset; consumers that want rates keep their own previous sample.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[PaddedU64; SHARDS]>,
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

impl Counter {
    /// A fresh counter at zero, unattached to any registry.
    pub fn new() -> Counter {
        Counter {
            shards: Arc::new(std::array::from_fn(|_| PaddedU64::default())),
        }
    }

    /// Adds `n`. One relaxed `fetch_add` on this thread's shard:
    /// lock-free, wait-free, zero-alloc.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1; see [`Counter::add`].
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Folds the shards into the current total. Concurrent increments
    /// may or may not be included, but the result is never torn.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    /// Whether `other` is a handle to this same counter.
    pub fn same_as(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.shards, &other.shards)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: PaddedU64,
}

impl Default for HistShard {
    fn default() -> Self {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: PaddedU64::default(),
        }
    }
}

/// A log-bucketed latency histogram: recording is one bit-width
/// computation plus two relaxed `fetch_add`s on this thread's shard
/// (bucket count and exact nanosecond sum) — lock-free and zero-alloc.
/// Like [`Counter`], histograms are monotonic and never reset.
#[derive(Clone)]
pub struct LatencyHistogram {
    shards: Arc<[HistShard; SHARDS]>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Bucket index for a nanosecond value: 0 for 0, else the bit width.
#[inline]
fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros()) as usize
}

impl LatencyHistogram {
    /// A fresh empty histogram, unattached to any registry.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            shards: Arc::new(std::array::from_fn(|_| HistShard::default())),
        }
    }

    /// Records one sample of `ns` nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        let shard = &self.shards[shard_index()];
        shard.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        shard.sum_ns.0.fetch_add(ns, Ordering::Relaxed);
    }

    /// Folds every shard into an owned [`HistogramSnapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        let mut sum_ns = 0u64;
        for shard in self.shards.iter() {
            for (i, b) in shard.buckets.iter().enumerate() {
                counts[i] = counts[i].wrapping_add(b.load(Ordering::Relaxed));
            }
            sum_ns = sum_ns.wrapping_add(shard.sum_ns.0.load(Ordering::Relaxed));
        }
        HistogramSnapshot { counts, sum_ns }
    }

    /// Whether `other` is a handle to this same histogram.
    pub fn same_as(&self, other: &LatencyHistogram) -> bool {
        Arc::ptr_eq(&self.shards, &other.shards)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &s.count())
            .field("p50_ns", &s.quantile_ns(0.5))
            .finish()
    }
}

/// A folded, immutable view of a [`LatencyHistogram`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; see [`BUCKETS`] for the bucket scheme.
    pub counts: [u64; BUCKETS],
    /// Exact sum of all recorded nanosecond values.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &c| a.wrapping_add(c))
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count()).unwrap_or(0)
    }

    /// Upper edge of the bucket holding the `q`-quantile sample
    /// (`0.0 ..= 1.0`). The returned value is `>=` the true quantile of
    /// the recorded samples and `<=` twice it (log-bucket guarantee);
    /// 0 when the histogram is empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        self.quantile_bucket(q).map_or(0, bucket_upper)
    }

    /// Lower edge of the bucket holding the `q`-quantile sample — a
    /// lower bound on the true quantile. 0 when empty.
    pub fn quantile_lower_ns(&self, q: f64) -> u64 {
        self.quantile_bucket(q).map_or(0, bucket_lower)
    }

    /// Upper bound on the largest recorded sample (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c != 0)
            .map_or(0, bucket_upper)
    }

    fn quantile_bucket(&self, q: f64) -> Option<usize> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the q-quantile sample, 1-based, at least 1.
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(i);
            }
        }
        Some(BUCKETS - 1)
    }
}

/// Inclusive upper edge of bucket `b`.
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Inclusive lower edge of bucket `b`.
fn bucket_lower(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

// ---------------------------------------------------------------------------
// Event journal
// ---------------------------------------------------------------------------

/// What happened; the coarse event taxonomy shared by the engine and
/// the catalog store. Payload fields `a`/`b` of [`Event`] are
/// kind-specific and documented per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum EventKind {
    /// A new serving snapshot was published. `a` = frozen prepared
    /// twigs carried, `b` = 1 if the snapshot is degraded.
    SnapshotPublish = 1,
    /// A summary refresh committed. `a` = 1 if predicate-scoped, 0 if
    /// full, `b` = pre-refresh drift in millionths.
    Refresh = 2,
    /// An automatic refresh attempt failed. `a` = consecutive strike
    /// count after this failure, `b` = backoff window in mutation
    /// ticks.
    RefreshStrike = 3,
    /// An automatic refresh was skipped because the backoff window is
    /// still open. `a` = mutation clock, `b` = backoff deadline.
    BackoffSkip = 4,
    /// The database entered refresh-degraded mode. `a` = strike count.
    DegradedEnter = 5,
    /// A successful refresh cleared refresh-degraded mode.
    DegradedExit = 6,
    /// A catalog shard failed validation and was quarantined at load.
    /// `a` = quarantined shard ordinal (load order).
    ShardQuarantine = 7,
    /// The prepared-query cache evicted an entry under CLOCK pressure.
    /// `a` = total evictions so far.
    CacheEviction = 8,
    /// The catalog store persisted a generation. `a` = generation id.
    StoreSave = 9,
    /// The catalog store fell back past corrupt generations while
    /// opening. `a` = generation served, `b` = generations skipped.
    StoreFallback = 10,
}

impl EventKind {
    /// All kinds, for exporters and tests.
    pub const ALL: [EventKind; 10] = [
        EventKind::SnapshotPublish,
        EventKind::Refresh,
        EventKind::RefreshStrike,
        EventKind::BackoffSkip,
        EventKind::DegradedEnter,
        EventKind::DegradedExit,
        EventKind::ShardQuarantine,
        EventKind::CacheEviction,
        EventKind::StoreSave,
        EventKind::StoreFallback,
    ];

    /// Stable snake_case name for exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SnapshotPublish => "snapshot_publish",
            EventKind::Refresh => "refresh",
            EventKind::RefreshStrike => "refresh_strike",
            EventKind::BackoffSkip => "backoff_skip",
            EventKind::DegradedEnter => "degraded_enter",
            EventKind::DegradedExit => "degraded_exit",
            EventKind::ShardQuarantine => "shard_quarantine",
            EventKind::CacheEviction => "cache_eviction",
            EventKind::StoreSave => "store_save",
            EventKind::StoreFallback => "store_fallback",
        }
    }

    fn from_code(code: u64) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| *k as u64 == code)
    }
}

/// One structured journal entry. `seq` is the global 1-based event
/// number: strictly increasing across the journal's lifetime, so gaps
/// in a read-back reveal exactly which events were overwritten or
/// mid-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global 1-based sequence number.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Database epoch at record time.
    pub epoch: u64,
    /// Kind-specific payload; see [`EventKind`].
    pub a: u64,
    /// Kind-specific payload; see [`EventKind`].
    pub b: u64,
}

struct Slot {
    /// Seqlock word: `2*n - 1` while event `n` is being written into
    /// this slot, `2*n` once it is complete, 0 when never used.
    seq: AtomicU64,
    kind: AtomicU64,
    epoch: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// Default journal capacity (events). Power of two.
pub const JOURNAL_CAP: usize = 256;

/// Fixed-capacity lock-free ring of the most recent [`Event`]s.
/// Writers are wait-free (one `fetch_add` plus five relaxed stores
/// bracketed by the per-slot seqlock); readers copy out whatever is
/// consistent and skip slots that are mid-overwrite. The journal
/// **never loses the most recent `capacity` completed events** in
/// quiescence; under active writing a reader may additionally skip the
/// handful of entries being overwritten at that instant.
pub struct EventJournal {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl EventJournal {
    /// A journal holding the `capacity` most recent events; `capacity`
    /// is rounded up to a power of two (minimum 8).
    pub fn with_capacity(capacity: usize) -> EventJournal {
        let cap = capacity.max(8).next_power_of_two();
        EventJournal {
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::default()).collect(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records one event. Wait-free; never allocates.
    pub fn record(&self, kind: EventKind, epoch: u64, a: u64, b: u64) {
        let n = self.head.fetch_add(1, Ordering::AcqRel) + 1;
        let mask = self.slots.len() - 1;
        let Some(slot) = self.slots.get((n as usize - 1) & mask) else {
            return; // unreachable: mask bounds the index
        };
        // Seqlock write protocol: odd marks the slot in-flight. The
        // release fence orders the odd mark before the payload stores,
        // so any reader that observes fresh payload also observes the
        // odd (or later) sequence and rejects the slot.
        slot.seq.store(2 * n - 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.epoch.store(epoch, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(2 * n, Ordering::Release);
    }

    /// Copies out the most recent events, oldest first. Entries being
    /// overwritten concurrently are skipped rather than returned torn.
    pub fn recent(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        if head == 0 {
            return Vec::new();
        }
        let cap = self.slots.len() as u64;
        let lo = head.saturating_sub(cap - 1).max(1);
        let mask = self.slots.len() - 1;
        let mut out = Vec::with_capacity((head - lo + 1) as usize);
        for n in lo..=head {
            let Some(slot) = self.slots.get((n as usize - 1) & mask) else {
                continue;
            };
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != 2 * n {
                continue; // mid-write, overwritten, or not yet visible
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let epoch = slot.epoch.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // overwritten while we copied
            }
            if let Some(kind) = EventKind::from_code(kind) {
                out.push(Event {
                    seq: n,
                    kind,
                    epoch,
                    a,
                    b,
                });
            }
        }
        out
    }
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("capacity", &self.capacity())
            .field("total", &self.total())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Stages and spans
// ---------------------------------------------------------------------------

/// The estimate pipeline stages the recorder times, in pipeline order,
/// plus the maintenance refresh stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Path-string → twig pattern parse.
    Parse = 0,
    /// Twig canonicalization (normalize + sibling sort).
    Canonicalize = 1,
    /// Prepared-query resolution (cache probe or install).
    Prepare = 2,
    /// Join-order planning (cost model over orderings).
    Plan = 3,
    /// The estimation kernel itself (histogram joins).
    Kernel = 4,
    /// Summary refresh on the maintenance path (not an estimate stage).
    Refresh = 5,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 6;

/// Warm-path stage-timing sample cadence: one call in `STAGE_SAMPLE`
/// per thread arms the clock in
/// [`Recorder::stage_clock_sampled`].
pub const STAGE_SAMPLE: u32 = 16;

/// Advances the per-thread warm-path tick and reports whether this
/// call lands on the sampling cadence.
#[inline]
fn warm_sampled() -> bool {
    thread_local! {
        static TICK: Cell<u32> = const { Cell::new(0) };
    }
    TICK.with(|t| {
        let v = t.get().wrapping_add(1);
        t.set(v);
        v % STAGE_SAMPLE == 0
    })
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Parse,
        Stage::Canonicalize,
        Stage::Prepare,
        Stage::Plan,
        Stage::Kernel,
        Stage::Refresh,
    ];

    /// Stable snake_case name for metric exposition.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Canonicalize => "canonicalize",
            Stage::Prepare => "prepare",
            Stage::Plan => "plan",
            Stage::Kernel => "kernel",
            Stage::Refresh => "refresh",
        }
    }

    /// One-line description for metric exposition.
    pub fn doc(&self) -> &'static str {
        match self {
            Stage::Parse => "Path-string to twig-pattern parse latency.",
            Stage::Canonicalize => "Twig canonicalization latency.",
            Stage::Prepare => "Prepared-query cache probe/install latency.",
            Stage::Plan => "Join-order planning latency.",
            Stage::Kernel => "Estimation kernel (histogram join) latency.",
            Stage::Refresh => "Maintenance summary-refresh latency.",
        }
    }
}

/// An RAII stage timer from [`Recorder::span`]: records the elapsed
/// nanoseconds into the stage histogram when dropped (or explicitly via
/// [`Span::finish_ns`]). Stack-only; allocates nothing. When the
/// recorder is disabled the span is inert and reads no clock.
pub struct Span<'a> {
    armed: Option<(&'a Recorder, Stage, clock::Timestamp)>,
}

impl<'a> Span<'a> {
    /// Stops the span now, records it, and returns the elapsed
    /// nanoseconds (0 if the recorder was disabled at span start).
    pub fn finish_ns(mut self) -> u64 {
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> u64 {
        match self.armed.take() {
            None => 0,
            Some((rec, stage, start)) => {
                let ns = start.elapsed_ns();
                rec.stage_ns(stage, ns);
                ns
            }
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// A sequential multi-stage timer for pipelines where one stage ends
/// exactly where the next begins: each [`StageClock::lap`] reads the
/// clock once, attributing the interval since the previous lap (or
/// construction) to the given stage. Cheaper than nested [`Span`]s —
/// N+1 clock reads for N stages. Inert (no clock reads, returns 0)
/// when the recorder was disabled at construction.
pub struct StageClock {
    last: Option<clock::Timestamp>,
}

impl StageClock {
    /// Ends the current stage, records its duration, starts the next,
    /// and returns the recorded nanoseconds.
    #[inline]
    pub fn lap(&mut self, rec: &Recorder, stage: Stage) -> u64 {
        match self.last {
            None => 0,
            Some(prev) => {
                let now = clock::now();
                let ns = now.ns_since(prev);
                self.last = Some(now);
                rec.stage_ns(stage, ns);
                ns
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Registry and recorder
// ---------------------------------------------------------------------------

/// Name and help text of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDesc {
    /// Prometheus-style metric name (`snake_case`, `_total` suffix for
    /// counters, `_ns` suffix for histograms).
    pub name: &'static str,
    /// One-line help text; the typed registry rejects empty docs.
    pub doc: &'static str,
}

/// The typed metric registry: every counter and histogram is created
/// through it with a static name and a **non-empty doc string** (xlint
/// R7 enforces the same rule lexically). Registration is idempotent —
/// re-registering a name returns a handle to the existing metric, so
/// components constructed twice against one recorder share state.
/// Registration locks and may allocate (cold path only); recording
/// through the returned handles never does.
pub struct Registry {
    counters: RwLock<Vec<(MetricDesc, Counter)>>,
    histograms: RwLock<Vec<(MetricDesc, LatencyHistogram)>>,
}

impl Registry {
    fn new() -> Registry {
        Registry {
            counters: RwLock::new(Vec::new()),
            histograms: RwLock::new(Vec::new()),
        }
    }

    /// Registers (or looks up) the named counter. An empty `doc` marks
    /// the metric `(undocumented)` — and fails xlint R7 at the call
    /// site, which is the real enforcement.
    pub fn counter(&self, name: &'static str, doc: &'static str) -> Counter {
        let doc = if doc.is_empty() {
            "(undocumented)"
        } else {
            doc
        };
        let mut reg = read_write(&self.counters); // xlint: allow(lock-free-serving, "metric registration is a cold startup-path operation; warm-path recording goes through the returned handle")
        if let Some((_, c)) = reg.iter().find(|(d, _)| d.name == name) {
            return c.clone();
        }
        let c = Counter::new();
        reg.push((MetricDesc { name, doc }, c.clone()));
        c
    }

    /// Registers (or looks up) the named latency histogram; same
    /// contract as [`Registry::counter`].
    pub fn histogram(&self, name: &'static str, doc: &'static str) -> LatencyHistogram {
        let doc = if doc.is_empty() {
            "(undocumented)"
        } else {
            doc
        };
        let mut reg = read_write(&self.histograms); // xlint: allow(lock-free-serving, "metric registration is a cold startup-path operation; warm-path recording goes through the returned handle")
        if let Some((_, h)) = reg.iter().find(|(d, _)| d.name == name) {
            return h.clone();
        }
        let h = LatencyHistogram::new();
        reg.push((MetricDesc { name, doc }, h.clone()));
        h
    }

    /// Folded samples of every registered counter, in registration
    /// order.
    pub fn counter_samples(&self) -> Vec<CounterSample> {
        let reg = read_shared(&self.counters); // xlint: allow(lock-free-serving, "snapshot/export path, never on the warm estimate path")
        reg.iter()
            .map(|(d, c)| CounterSample {
                name: d.name,
                doc: d.doc,
                value: c.value(),
            })
            .collect()
    }

    /// Folded snapshots of every registered histogram, in registration
    /// order.
    pub fn histogram_samples(&self) -> Vec<HistogramSample> {
        let reg = read_shared(&self.histograms); // xlint: allow(lock-free-serving, "snapshot/export path, never on the warm estimate path")
        reg.iter()
            .map(|(d, h)| HistogramSample {
                name: d.name,
                doc: d.doc,
                snap: h.snapshot(),
            })
            .collect()
    }
}

/// Poison-tolerant write guard: a panicked registrant cannot brick
/// telemetry for everyone else.
fn read_write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    let guard = lock.write(); // xlint: allow(lock-free-serving, "registration lock helper; cold path only")
    match guard {
        Ok(g) => g,
        Err(poison) => poison.into_inner(),
    }
}

/// Poison-tolerant read guard; see [`read_write`].
fn read_shared<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    let guard = lock.read(); // xlint: allow(lock-free-serving, "snapshot lock helper; cold path only")
    match guard {
        Ok(g) => g,
        Err(poison) => poison.into_inner(),
    }
}

/// One folded counter sample for exporters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: &'static str,
    /// Help text.
    pub doc: &'static str,
    /// Folded value at snapshot time.
    pub value: u64,
}

/// One folded histogram sample for exporters.
#[derive(Debug, Clone)]
pub struct HistogramSample {
    /// Metric name.
    pub name: &'static str,
    /// Help text.
    pub doc: &'static str,
    /// Folded bucket state.
    pub snap: HistogramSnapshot,
}

/// One folded stage-latency sample.
#[derive(Debug, Clone)]
pub struct StageSample {
    /// Which pipeline stage.
    pub stage: Stage,
    /// Folded bucket state.
    pub snap: HistogramSnapshot,
}

/// Everything the recorder knows, folded at one instant.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// Whether recording was enabled when the snapshot was taken.
    pub enabled: bool,
    /// Every registered counter.
    pub counters: Vec<CounterSample>,
    /// Every registered non-stage histogram.
    pub histograms: Vec<HistogramSample>,
    /// Per-stage latency, in [`Stage::ALL`] order.
    pub stages: Vec<StageSample>,
    /// Most recent journal events, oldest first.
    pub events: Vec<Event>,
    /// Total events ever journaled (≥ `events.len()`).
    pub events_total: u64,
}

struct RecorderInner {
    enabled: AtomicBool,
    registry: Registry,
    stages: [LatencyHistogram; STAGE_COUNT],
    journal: EventJournal,
}

/// The cloneable observability handle threaded through the engine:
/// owns the typed [`Registry`], the per-stage latency histograms, and
/// the [`EventJournal`]. All recording operations are lock-free and
/// zero-alloc; a disabled recorder (see [`Recorder::set_enabled`])
/// skips clock reads and all recording at a single branch per call,
/// which is what the `telemetry_overhead` bench toggles.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh enabled recorder with an empty registry and a
    /// [`JOURNAL_CAP`]-event journal.
    pub fn new() -> Recorder {
        Recorder::with_journal_capacity(JOURNAL_CAP)
    }

    /// [`Recorder::new`] with an explicit journal capacity.
    pub fn with_journal_capacity(capacity: usize) -> Recorder {
        Recorder {
            inner: Arc::new(RecorderInner {
                enabled: AtomicBool::new(true),
                registry: Registry::new(),
                stages: std::array::from_fn(|_| LatencyHistogram::new()),
                journal: EventJournal::with_capacity(capacity),
            }),
        }
    }

    /// Whether `other` is a handle to this same recorder.
    pub fn same_as(&self, other: &Recorder) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Turns recording on or off. Off: spans read no clock, events and
    /// stage timings are dropped. Registered counters remain live —
    /// callers gate their warm-path increments on [`Recorder::enabled`].
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Release);
    }

    /// Whether recording is currently on.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Registers (or looks up) a named counter; see
    /// [`Registry::counter`].
    pub fn counter(&self, name: &'static str, doc: &'static str) -> Counter {
        self.inner.registry.counter(name, doc) // xlint: allow(metrics-discipline, "delegation: forwards the caller's literals, where R7 is enforced")
    }

    /// Registers (or looks up) a named histogram; see
    /// [`Registry::histogram`].
    pub fn histogram(&self, name: &'static str, doc: &'static str) -> LatencyHistogram {
        self.inner.registry.histogram(name, doc) // xlint: allow(metrics-discipline, "delegation: forwards the caller's literals, where R7 is enforced")
    }

    /// Journals one structured event (dropped when disabled).
    #[inline]
    pub fn event(&self, kind: EventKind, epoch: u64, a: u64, b: u64) {
        if self.enabled() {
            self.inner.journal.record(kind, epoch, a, b);
        }
    }

    /// Records `ns` into the given stage histogram (dropped when
    /// disabled).
    #[inline]
    pub fn stage_ns(&self, stage: Stage, ns: u64) {
        if self.enabled() {
            self.inner.stages[stage as usize].record(ns);
        }
    }

    /// Starts an RAII timer for `stage`; inert if disabled.
    #[inline]
    pub fn span(&self, stage: Stage) -> Span<'_> {
        Span {
            armed: if self.enabled() {
                Some((self, stage, clock::now()))
            } else {
                None
            },
        }
    }

    /// Starts a sequential multi-stage timer; inert if disabled.
    #[inline]
    pub fn stage_clock(&self) -> StageClock {
        StageClock {
            last: if self.enabled() {
                Some(clock::now())
            } else {
                None
            },
        }
    }

    /// Starts a stage clock on a 1-in-[`STAGE_SAMPLE`] per-thread
    /// cadence; the other calls get an inert clock (no clock reads, no
    /// records). Per-estimate stage timing costs ~3 clock reads plus a
    /// handful of shard adds — more than the telemetry overhead budget
    /// allows on a sub-microsecond warm path — so the warm serving
    /// loops sample. The cadence is deterministic per thread, which
    /// keeps histogram quantiles unbiased for the steady mixes the
    /// service sees; cold paths (refresh, traced estimates) use the
    /// exact [`Recorder::stage_clock`] / [`Recorder::span`] forms.
    #[inline]
    pub fn stage_clock_sampled(&self) -> StageClock {
        if warm_sampled() {
            self.stage_clock()
        } else {
            StageClock { last: None }
        }
    }

    /// Starts a [`Span`] on the same 1-in-[`STAGE_SAMPLE`] per-thread
    /// cadence as [`Recorder::stage_clock_sampled`] (the two share one
    /// tick, so interleaved sampled spans and clocks stay uniform).
    #[inline]
    pub fn span_sampled(&self, stage: Stage) -> Span<'_> {
        if warm_sampled() {
            self.span(stage)
        } else {
            Span { armed: None }
        }
    }

    /// Read-only access to the event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.inner.journal
    }

    /// Folded snapshot of a single stage histogram.
    pub fn stage_snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.inner.stages[stage as usize].snapshot()
    }

    /// Folds everything — counters, histograms, stage latencies, and
    /// the journal — into one [`ObsSnapshot`].
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            enabled: self.enabled(),
            counters: self.inner.registry.counter_samples(),
            histograms: self.inner.registry.histogram_samples(),
            stages: Stage::ALL
                .into_iter()
                .map(|stage| StageSample {
                    stage,
                    snap: self.inner.stages[stage as usize].snapshot(),
                })
                .collect(),
            events: self.inner.journal.recent(),
            events_total: self.inner.journal.total(),
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled())
            .field("events_total", &self.inner.journal.total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_folds_across_threads() {
        let c = Counter::new();
        thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn histogram_buckets_bound_samples() {
        let h = LatencyHistogram::new();
        for ns in [0u64, 1, 2, 3, 100, 1000, 1_000_000, u64::MAX] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8);
        assert_eq!(s.quantile_lower_ns(0.0), 0);
        assert_eq!(s.quantile_ns(1.0), u64::MAX);
        // p50 of the 8 samples is the 4th (value 3): bucket 2 covers 2..=3.
        assert_eq!(s.quantile_ns(0.5), 3);
        assert_eq!(s.quantile_lower_ns(0.5), 2);
    }

    #[test]
    fn journal_keeps_most_recent() {
        let j = EventJournal::with_capacity(8);
        for i in 0..20u64 {
            j.record(EventKind::SnapshotPublish, i, i * 2, 0);
        }
        let recent = j.recent();
        assert_eq!(recent.len(), 8);
        assert_eq!(recent[0].seq, 13);
        assert_eq!(recent[7].seq, 20);
        for e in recent {
            assert_eq!(e.a, e.epoch * 2);
        }
    }

    #[test]
    fn registry_registration_is_idempotent() {
        let r = Recorder::new();
        let a = r.counter("xobs_test_total", "A test counter.");
        let b = r.counter("xobs_test_total", "A test counter.");
        a.inc();
        b.inc();
        assert!(a.same_as(&b));
        assert_eq!(a.value(), 2);
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = Recorder::new();
        r.set_enabled(false);
        r.event(EventKind::Refresh, 1, 0, 0);
        r.stage_ns(Stage::Kernel, 100);
        {
            let _span = r.span(Stage::Parse);
        }
        let snap = r.snapshot();
        assert_eq!(snap.events_total, 0);
        assert!(snap.stages.iter().all(|s| s.snap.count() == 0));
    }
}
