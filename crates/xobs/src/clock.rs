//! Monotonic timestamps for span timing.
//!
//! This module is the **only** place in `xobs` allowed to call
//! `Instant::now()` — enforced by xlint R7 (`metrics-discipline`),
//! which confines raw wall-clock reads so every warm-path timing goes
//! through [`crate::Recorder`] spans and stays auditable from one
//! file. Everything else in the crate handles opaque [`Timestamp`]
//! values and nanosecond deltas.

use std::time::Instant;

/// An opaque monotonic timestamp. Cheap to copy; subtract two of them
/// (via [`Timestamp::ns_since`] / [`Timestamp::elapsed_ns`]) to get a
/// duration in nanoseconds. Never compares across processes.
#[derive(Debug, Clone, Copy)]
pub struct Timestamp(Instant);

/// Reads the monotonic clock once. This is the single sanctioned
/// `Instant::now()` call site for the whole crate.
#[inline]
pub fn now() -> Timestamp {
    Timestamp(Instant::now())
}

impl Timestamp {
    /// Nanoseconds elapsed between this timestamp and a fresh clock
    /// read, saturating at `u64::MAX` (584 years — unreachable).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        saturate(self.0.elapsed().as_nanos())
    }

    /// Nanoseconds from `earlier` to `self`; 0 if `earlier` is not
    /// actually earlier (monotonic clocks can tie).
    #[inline]
    pub fn ns_since(&self, earlier: Timestamp) -> u64 {
        saturate(self.0.saturating_duration_since(earlier.0).as_nanos())
    }
}

#[inline]
fn saturate(ns: u128) -> u64 {
    if ns > u64::MAX as u128 {
        u64::MAX
    } else {
        ns as u64
    }
}
